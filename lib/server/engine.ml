module Json = Metrics.Json
module Glr = Iglr.Glr
module Session = Iglr.Session
module Language = Languages.Language
module Registry = Languages.Registry
module P = Protocol

(* Server-side observability: request traffic, scheduling shape and the
   hardening counters (shed / retried / cancelled / sink failures). *)
let m_requests = Metrics.counter "server.requests"
let m_errors = Metrics.counter "server.rpc_errors"
let m_opens = Metrics.counter "server.opens"
let m_parses = Metrics.counter "server.parses"
let m_diags = Metrics.counter "server.diags"
let m_shed = Metrics.counter "server.shed"
let m_retried = Metrics.counter "server.retried"
let m_cancelled = Metrics.counter "server.cancelled"
let m_sink_errors = Metrics.counter "server.sink_errors"

(* The deadline clock: wall time plus whatever skew the fault plan's
   [clock.skew] site injects.  Only deadline/latency arithmetic reads
   it — a skewed clock must never corrupt anything but timing. *)
let now_ms () = Metrics.now_ms () +. Fault.skew_ms ()

(* ------------------------------------------------------------------ *)
(* Ordered response writer: completions arrive from any worker domain
   in any order; [emit] sees them strictly in request order.  Each
   completion may carry an [after] thunk (the access-log emission) that
   runs right after its line is emitted — so the log shares the
   response stream's ordering guarantee.

   A sink that throws (broken pipe, injected [sink.fail]) must not take
   the writer down with it: the mutex would stay locked and every later
   response would deadlock behind the corpse.  Failed emissions are
   counted and dropped; ordering progress continues.                   *)

module Writer = struct
  type t = {
    m : Mutex.t;
    mutable next : int;
    buffered : (int, string * (unit -> unit) option) Hashtbl.t;
    mutable emit : string -> unit;
    sink_errors : int Atomic.t;
  }

  let create emit =
    { m = Mutex.create (); next = 0; buffered = Hashtbl.create 16; emit;
      sink_errors = Atomic.make 0 }

  let depth t =
    Mutex.lock t.m;
    let d = Hashtbl.length t.buffered in
    Mutex.unlock t.m;
    d

  let complete ?after t seq line =
    Mutex.lock t.m;
    Hashtbl.replace t.buffered seq (line, after);
    while Hashtbl.mem t.buffered t.next do
      let line, after = Hashtbl.find t.buffered t.next in
      (try
         Fault.point Fault.Sink_fail;
         t.emit line
       with _ ->
         Atomic.incr t.sink_errors;
         Metrics.incr m_sink_errors);
      (match after with Some f -> ( try f () with _ -> ()) | None -> ());
      Hashtbl.remove t.buffered t.next;
      t.next <- t.next + 1
    done;
    Mutex.unlock t.m
end

(* Dispatcher-side view of which documents are open, shared with the
   open job (which must roll its id back if session creation fails):
   mutations are rare, a single mutex suffices. *)
module Live = struct
  type t = { m : Mutex.t; tbl : (string, unit) Hashtbl.t }

  let create () = { m = Mutex.create (); tbl = Hashtbl.create 16 }

  let mem t k =
    Mutex.lock t.m;
    let r = Hashtbl.mem t.tbl k in
    Mutex.unlock t.m;
    r

  let add t k =
    Mutex.lock t.m;
    Hashtbl.replace t.tbl k ();
    Mutex.unlock t.m

  let remove t k =
    Mutex.lock t.m;
    Hashtbl.remove t.tbl k;
    Mutex.unlock t.m
end

(* ------------------------------------------------------------------ *)
(* Slow-request flight recorder: the last [cap] parses plus the [cap]
   slowest since startup, each with its end-to-end latency and reuse
   shape.  Quarantine incidents land here too, flagged by an
   ["incident"] reject entry.  Written by worker domains, read by the
   dispatcher's telemetry handler and the SIGUSR1 dump — one mutex.    *)

module Flight = struct
  type entry = {
    f_req : int;
    f_doc : string;
    f_ms : float;  (* end-to-end: accept → response built *)
    f_reuse_pct : float;
    f_degraded : bool;
    f_rejects : (string * int) list;  (* reuse-reject counts by reason *)
  }

  type t = {
    m : Mutex.t;
    cap : int;
    recent : entry Queue.t;
    mutable slowest : entry list;  (* sorted by f_ms descending *)
    mutable seen : int;
  }

  let create cap =
    { m = Mutex.create (); cap = max 1 cap; recent = Queue.create ();
      slowest = []; seen = 0 }

  let record t e =
    Mutex.lock t.m;
    t.seen <- t.seen + 1;
    Queue.push e t.recent;
    if Queue.length t.recent > t.cap then ignore (Queue.pop t.recent);
    let rec insert = function
      | [] -> [ e ]
      | x :: _ as l when e.f_ms >= x.f_ms -> e :: l
      | x :: rest -> x :: insert rest
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    t.slowest <- take t.cap (insert t.slowest);
    Mutex.unlock t.m

  let depth t =
    Mutex.lock t.m;
    let d = Queue.length t.recent in
    Mutex.unlock t.m;
    d

  let entry_to_json e =
    Json.Obj
      [
        ("req", Json.Int e.f_req);
        ("doc", Json.String e.f_doc);
        ("ms", Json.Float e.f_ms);
        ("reuse_pct", Json.Float e.f_reuse_pct);
        ("degraded", Json.Bool e.f_degraded);
        ( "rejects",
          Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) e.f_rejects) );
      ]

  let to_json t =
    Mutex.lock t.m;
    let recent = List.of_seq (Queue.to_seq t.recent) in
    let slowest = t.slowest in
    let seen = t.seen in
    Mutex.unlock t.m;
    Json.Obj
      [
        ("capacity", Json.Int t.cap);
        ("recorded", Json.Int seen);
        ("recent", Json.List (List.map entry_to_json recent));
        ("slowest", Json.List (List.map entry_to_json slowest));
      ]
end

(* ------------------------------------------------------------------ *)
(* Cancellation wheel: one slot per in-flight parse, holding its cancel
   flag and (when the request carries a deadline) the accept-relative
   instant after which it is overdue.  The dispatcher [tick]s the wheel
   on every accepted line; graceful drain [fire_all]s it so in-flight
   parses fall back to the degradation ladder instead of holding the
   process open.  The flags are plain [Atomic.t]s — a parse polls its
   own flag from inside the GLR budget check without taking the wheel
   mutex.                                                              *)

module Wheel = struct
  type entry = { w_deadline : float option; w_flag : bool Atomic.t }
  type t = { m : Mutex.t; tbl : (int, entry) Hashtbl.t }

  let create () = { m = Mutex.create (); tbl = Hashtbl.create 16 }

  let register t seq ~deadline flag =
    Mutex.lock t.m;
    Hashtbl.replace t.tbl seq { w_deadline = deadline; w_flag = flag };
    Mutex.unlock t.m

  let unregister t seq =
    Mutex.lock t.m;
    Hashtbl.remove t.tbl seq;
    Mutex.unlock t.m

  (* Mark overdue entries; returns how many were newly marked. *)
  let tick t ~now =
    Mutex.lock t.m;
    let fired = ref 0 in
    Hashtbl.iter
      (fun _ e ->
        match e.w_deadline with
        | Some d when d < now && not (Atomic.get e.w_flag) ->
            Atomic.set e.w_flag true;
            incr fired
        | _ -> ())
      t.tbl;
    Mutex.unlock t.m;
    !fired

  let fire_all t =
    Mutex.lock t.m;
    let fired = ref 0 in
    Hashtbl.iter
      (fun _ e ->
        if not (Atomic.get e.w_flag) then begin
          Atomic.set e.w_flag true;
          incr fired
        end)
      t.tbl;
    Mutex.unlock t.m;
    !fired
end

(* Per-request bookkeeping for correlation: method, doc and accept
   timestamp, keyed by the dispatcher-assigned sequence number.  The
   dispatcher writes it before submitting; the parse handler reads the
   accept time for end-to-end latency; the access-log thunk consumes
   (and removes) the record when the response line is emitted. *)
type meta = {
  m_meth : string;
  m_doc : string option;
  m_id : Json.t;
  m_t0 : float;
}

(* Response-slot state for a submitted job: exactly one of the normal
   path (worker claims Pending→Running, runs, responds), the shed path
   (dispatcher claims Pending→Shed, responds [-32007]) and the crash
   path (supervisor claims, responds [-32006]) wins the slot, so every
   accepted request yields exactly one response no matter which faults
   fire. *)
let slot_pending = 0
let slot_running = 1
let slot_shed = 2

type t = {
  pool : Pool.t;
  sched : Scheduler.t;
  writer : Writer.t;
  live : Live.t;
  flight : Flight.t;
  wheel : Wheel.t;
  log : (string -> unit) option;
  meta_m : Mutex.t;
  meta : (int, meta) Hashtbl.t;
  max_payload : int;
  max_doc_queue : int;  (* 0 = unbounded *)
  max_inflight : int;  (* 0 = unbounded *)
  stopping : bool Atomic.t;
  shed : int Atomic.t;
  retried : int Atomic.t;
  cancelled : int Atomic.t;
  mutable seq : int;  (* dispatcher-only *)
  mutable served : int;  (* dispatcher-only: requests accepted *)
  mutable loaded : string list;  (* dispatcher-only: languages forced *)
  pending : (int * Json.t * int Atomic.t) Queue.t;
      (* dispatcher-only: queued parse requests in accept order, for
         oldest-first shedding under global pressure *)
  ambig_m : Mutex.t;
  ambig_cache : (string * int, Json.t) Hashtbl.t;
}

let pool t = t.pool
let requests t = t.served
let jobs t = Scheduler.jobs t.sched
let stopping t = Atomic.get t.stopping

let create ?jobs ?(max_payload = 8 * 1024 * 1024) ?(flight_cap = 32)
    ?(max_doc_queue = 0) ?(max_inflight = 0) ?log ~emit () =
  let jobs =
    match jobs with
    | Some j -> j
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  {
    pool = Pool.create ();
    sched = Scheduler.create ~jobs;
    writer = Writer.create emit;
    live = Live.create ();
    flight = Flight.create flight_cap;
    wheel = Wheel.create ();
    log;
    meta_m = Mutex.create ();
    meta = Hashtbl.create 64;
    max_payload;
    max_doc_queue;
    max_inflight;
    stopping = Atomic.make false;
    shed = Atomic.make 0;
    retried = Atomic.make 0;
    cancelled = Atomic.make 0;
    seq = 0;
    served = 0;
    loaded = [];
    pending = Queue.create ();
    ambig_m = Mutex.create ();
    ambig_cache = Hashtbl.create 8;
  }

let begin_shutdown t = Atomic.set t.stopping true

let drain ?deadline_ms t =
  match deadline_ms with
  | None -> Scheduler.drain t.sched
  | Some ms ->
      (* Watchdog: if the drain overruns the hard deadline, fire every
         in-flight cancel flag — parses abort through the degradation
         ladder and still produce (degraded) responses, so the drain
         completes without dropping anything. *)
      let stop = Atomic.make false in
      let wd =
        Domain.spawn (fun () ->
            let t_end = Unix.gettimeofday () +. (ms /. 1000.) in
            while (not (Atomic.get stop)) && Unix.gettimeofday () < t_end do
              Unix.sleepf 0.002
            done;
            if not (Atomic.get stop) then begin
              let n = Wheel.fire_all t.wheel in
              if n > 0 then begin
                Atomic.fetch_and_add t.cancelled n |> ignore;
                for _ = 1 to n do Metrics.incr m_cancelled done
              end
            end)
      in
      Scheduler.drain t.sched;
      Atomic.set stop true;
      Domain.join wd

let shutdown ?deadline_ms t =
  begin_shutdown t;
  drain ?deadline_ms t;
  Scheduler.shutdown t.sched

let set_emit t emit =
  Mutex.lock t.writer.Writer.m;
  t.writer.Writer.emit <- emit;
  Mutex.unlock t.writer.Writer.m

let put_meta t seq m =
  Mutex.lock t.meta_m;
  Hashtbl.replace t.meta seq m;
  Mutex.unlock t.meta_m

let find_meta t seq =
  Mutex.lock t.meta_m;
  let m = Hashtbl.find_opt t.meta seq in
  Mutex.unlock t.meta_m;
  m

let take_meta t seq =
  Mutex.lock t.meta_m;
  let m = Hashtbl.find_opt t.meta seq in
  Hashtbl.remove t.meta seq;
  Mutex.unlock t.meta_m;
  m

let inflight t =
  Mutex.lock t.meta_m;
  let n = Hashtbl.length t.meta in
  Mutex.unlock t.meta_m;
  n

(* One structured access-log line per response, emitted in response
   order by the writer's [after] hook.  The line re-parses the response
   envelope to classify ok/error — cheap, and only when logging. *)
let log_line seq line meta =
  let status =
    match Json.of_string line with
    | Json.Obj _ as j -> (
        match Json.member "error" j with Some _ -> "error" | None -> "ok")
    | _ | (exception _) -> "ok"
  in
  let base =
    match meta with
    | Some m ->
        [
          ("req", Json.Int seq);
          ("id", m.m_id);
          ("method", Json.String m.m_meth);
        ]
        @ (match m.m_doc with
          | Some d -> [ ("doc", Json.String d) ]
          | None -> [])
        @ [
            ("status", Json.String status);
            ("ms", Json.Float (Metrics.now_ms () -. m.m_t0));
          ]
    | None -> [ ("req", Json.Int seq); ("status", Json.String status) ]
  in
  Json.to_line (Json.Obj base)

let respond t seq line =
  match t.log with
  | None ->
      ignore (take_meta t seq);
      Writer.complete t.writer seq line
  | Some log ->
      let after () =
        let meta = take_meta t seq in
        log (log_line seq line meta)
      in
      Writer.complete ~after t.writer seq line

let respond_err t seq ~id e =
  Metrics.incr m_errors;
  respond t seq (P.err ~req:seq ~id e)

(* Quarantine: the session let an exception escape a mutating entry
   point, so the document can no longer be trusted.  Mark it (the next
   request that touches it rebuilds from the last committed text) and
   log the incident on the flight recorder. *)
let quarantine t ~req ~doc =
  Pool.poison t.pool doc;
  let t0 = match find_meta t req with Some m -> m.m_t0 | None -> now_ms () in
  Flight.record t.flight
    {
      Flight.f_req = req;
      f_doc = doc;
      f_ms = Metrics.now_ms () -. t0;
      f_reuse_pct = 0.;
      f_degraded = true;
      f_rejects = [ ("incident", 1) ];
    }

(* ------------------------------------------------------------------ *)
(* Document handlers — run on worker domains under per-doc ordering.   *)

let with_entry t ~req ~id doc f =
  match Pool.find t.pool doc with
  | None ->
      P.err ~req ~id { P.code = P.e_unknown_doc; message = "unknown doc " ^ doc }
  | Some e ->
      (* Heal-on-touch: a quarantined session is rebuilt from its last
         committed text before the request runs.  We are under the
         scheduler's per-document ordering here, so the rebuild cannot
         race another request for the same document. *)
      if e.Pool.poisoned then Pool.heal e;
      f e

let do_open t ~req ~id ~doc ~lang_name lang ~text ~budget () =
  match
    Session.create ?budget ~table:(Language.table lang)
      ~lexer:(Language.lexer lang) text
  with
  | session, outcome ->
      Pool.add t.pool
        {
          Pool.doc;
          lang_name;
          lang;
          session;
          committed_text = text;
          poisoned = false;
          analysis = None;
        };
      Metrics.incr m_opens;
      P.ok ~req ~id
        (Json.Obj
           [
             ("doc", Json.String doc);
             ("lang", Json.String lang_name);
             ("outcome", P.outcome_to_json outcome);
           ])
  | exception Lexgen.Scanner.Lex_error e ->
      (* The document never existed: roll back the dispatcher's
         optimistic registration so the id can be reused. *)
      Live.remove t.live doc;
      P.err ~req ~id
        {
          P.code = P.e_lex;
          message =
            Printf.sprintf "text is not scannable at byte %d"
              e.Lexgen.Scanner.error_pos;
        }

let do_edit t ~req ~id ~doc edits () =
  with_entry t ~req ~id doc @@ fun e ->
  let applied = ref 0 in
  match
    List.iter
      (fun (op : P.edit_op) ->
        Session.edit e.Pool.session ~pos:op.P.pos ~del:op.P.del
          ~insert:op.P.insert;
        incr applied)
      edits
  with
  | () ->
      (* All edits landed: this text is the new rebuild point. *)
      Pool.commit_text e (Session.text e.Pool.session);
      P.ok ~req ~id
        (Json.Obj
           [ ("doc", Json.String doc); ("applied", Json.Int !applied) ])
  | exception Lexgen.Scanner.Lex_error le ->
      (* Edits before the offender stay applied (each is atomic); the
         offender itself was rejected with the document unchanged.  The
         rebuild point is NOT advanced — a later quarantine rolls the
         partial batch back too. *)
      P.err ~req ~id
        {
          P.code = P.e_lex;
          message =
            Printf.sprintf
              "edit %d of %d rejected: unscannable at byte %d (%d edit(s) \
               remain applied)"
              (!applied + 1) (List.length edits)
              le.Lexgen.Scanner.error_pos !applied;
        }
  | exception Invalid_argument msg ->
      P.err ~req ~id
        {
          P.code = P.e_params;
          message =
            Printf.sprintf "edit %d of %d rejected: %s (%d edit(s) remain \
                            applied)"
              (!applied + 1) (List.length edits) msg !applied;
        }

let do_parse ~req ~id ~doc ~budget ~timing ~metrics t () =
  with_entry t ~req ~id doc @@ fun e ->
  Metrics.incr m_parses;
  Fault.point Fault.Kill_mid;
  Fault.point Fault.Worker_raise;
  let s = e.Pool.session in
  let saved = Session.budget s in
  (match budget with Some b -> Session.set_budget s b | None -> ());
  (* Deadline cancellation: the deadline counts from ACCEPT, not parse
     start — a request that sat in the queue past its deadline aborts
     (degraded, through the recovery ladder) on its first budget check.
     The wheel flag covers the same request from the dispatcher side
     (tick on traffic, fire_all on drain); the local clock comparison
     makes cancellation work even when the dispatcher is idle. *)
  let accept_t0 =
    match find_meta t req with Some m -> m.m_t0 | None -> now_ms ()
  in
  let dl = (Option.value budget ~default:saved).Glr.deadline_ms in
  let flag = Atomic.make false in
  Wheel.register t.wheel req
    ~deadline:(if dl < infinity then Some (accept_t0 +. dl) else None)
    flag;
  let cancel () =
    Atomic.get flag || (dl < infinity && now_ms () > accept_t0 +. dl)
  in
  Fun.protect ~finally:(fun () -> Wheel.unregister t.wheel req) @@ fun () ->
  let t0 = Metrics.now_ms () in
  (* [Session.measure] reads only this domain's metric shard, so [d] is
     exactly this request's activity even while sibling domains parse. *)
  let outcome, d = Session.measure (fun () -> Session.reparse ~cancel s) in
  let ms = Metrics.now_ms () -. t0 in
  (match budget with Some _ -> Session.set_budget s saved | None -> ());
  let degraded =
    match outcome with
    | Session.Parsed st -> st.Glr.degraded
    | Session.Recovered { degraded; _ } -> degraded
  in
  let end_to_end =
    match find_meta t req with
    | Some m -> Metrics.now_ms () -. m.m_t0
    | None -> ms
  in
  Flight.record t.flight
    {
      Flight.f_req = req;
      f_doc = doc;
      f_ms = end_to_end;
      f_reuse_pct = Metrics.share d "glr.nodes_reused" "glr.nodes_created";
      f_degraded = degraded;
      f_rejects =
        [
          ("state-mismatch", Metrics.count d "glr.lookahead_state_miss");
          ("no-state", Metrics.count d "glr.lookahead_nostate");
          ("breakdown", Metrics.count d "glr.breakdowns");
        ];
    };
  P.ok ~req ~id
    (Json.Obj
       ([
          ("doc", Json.String doc); ("outcome", P.outcome_to_json outcome);
        ]
       @ (if timing then [ ("ms", Json.Float ms) ] else [])
       @ if metrics then [ ("metrics", Metrics.to_json d) ] else []))

let do_errors t ~req ~id ~doc () =
  with_entry t ~req ~id doc @@ fun e ->
  P.ok ~req ~id
    (Json.Obj
       [
         ("doc", Json.String doc);
         ("regions", P.regions_to_json (Session.error_regions e.Pool.session));
       ])

(* Semantic diagnostics: the analyzers live on the pool entry and stay
   commit-subscribed to its session, so consecutive diag requests after
   small edits validate cached query cells instead of re-analysing the
   whole document.  Runs under the scheduler's per-document ordering
   (it mutates the dag's choice selections and the query store). *)
let do_diag t ~req ~id ~doc ~metrics () =
  with_entry t ~req ~id doc @@ fun e ->
  Metrics.incr m_diags;
  let s = e.Pool.session in
  let grammar = e.Pool.lang.Language.grammar in
  if not (Semantics.Diag.supported grammar) then
    P.err ~req ~id
      {
        P.code = P.e_unsupported;
        message =
          Printf.sprintf "language %s has no semantic analysis"
            e.Pool.lang_name;
      }
  else begin
    let analysis =
      match e.Pool.analysis with
      | Some a -> a
      | None ->
          let d = Semantics.Diag.create grammar in
          let tds =
            match Grammar.Cfg.find_terminal grammar "typedef" with
            | _ ->
                let tds =
                  Semantics.Typedefs.create
                    ?policy:e.Pool.lang.Language.ambig.Language.sem_policy
                    grammar
                in
                Semantics.Typedefs.on_select tds (Semantics.Diag.touch d);
                Some tds
            | exception Not_found -> None
          in
          Session.on_commit s (fun ~watermark root ->
              Semantics.Diag.commit d ~watermark root);
          let a = { Pool.a_diag = d; a_tds = tds } in
          e.Pool.analysis <- Some a;
          a
    in
    (* [Session.measure] scopes the delta to this domain: the query.*
       counters in it are exactly this request's compute/hit/backdate
       activity. *)
    let r, d =
      Session.measure (fun () ->
          let typedefs =
            match analysis.Pool.a_tds with
            | Some tds ->
                ignore (Semantics.Typedefs.analyze tds (Session.root s));
                Semantics.Typedefs.global_typedefs tds
            | None -> []
          in
          Semantics.Diag.run analysis.Pool.a_diag ~typedefs (Session.root s))
    in
    let loc tok = Session.location_of_token s tok in
    let engine = Semantics.Diag.engine analysis.Pool.a_diag in
    let qs = Query.stats engine in
    P.ok ~req ~id
      (Json.Obj
         ([
            ("doc", Json.String doc);
            ( "diagnostics",
              Json.List
                (List.map
                   (fun (dg : Semantics.Diag.diag) ->
                     let l = loc dg.Semantics.Diag.d_token in
                     Json.Obj
                       [
                         ("code", Json.String dg.Semantics.Diag.d_code);
                         ("line", Json.Int l.Session.line);
                         ("col", Json.Int l.Session.col);
                         ("token", Json.Int dg.Semantics.Diag.d_token);
                         ("message", Json.String dg.Semantics.Diag.d_message);
                       ])
                   r.Semantics.Diag.diags) );
            ( "bindings",
              Json.List
                (List.map
                   (fun (b : Semantics.Diag.binding) ->
                     Json.Obj
                       [
                         ("name", Json.String b.Semantics.Diag.b_name);
                         ( "kind",
                           Json.String
                             (Semantics.Diag.kind_name b.Semantics.Diag.b_kind)
                         );
                         ( "type",
                           Json.String
                             (Semantics.Diag.ty_name b.Semantics.Diag.b_ty) );
                       ])
                   r.Semantics.Diag.bindings) );
            ( "typedefs",
              Json.List
                (List.map
                   (fun n -> Json.String n)
                   r.Semantics.Diag.typedefs) );
            ( "query",
              Json.Obj
                [
                  ("cells", Json.Int (Query.cells engine));
                  ("computes", Json.Int qs.Query.computes);
                  ("hits", Json.Int qs.Query.hits);
                  ("backdated", Json.Int qs.Query.backdated);
                ] );
          ]
         @ if metrics then [ ("metrics", Metrics.to_json d) ] else []))
  end

(* Ambiguity reports are a property of the language, not of the
   document's current text: computed once per (language, K) and shared
   by every document of that language. *)
let ambig_report t lang_name lang max_len =
  let key = (lang_name, max_len) in
  Mutex.lock t.ambig_m;
  let cached = Hashtbl.find_opt t.ambig_cache key in
  Mutex.unlock t.ambig_m;
  match cached with
  | Some j -> j
  | None ->
      let spec = lang.Language.ambig in
      let config =
        Analyze.Ambig.config ~syn_filters:spec.Language.syn_filters
          ?sem_policy:spec.Language.sem_policy
          ~sem_preamble:spec.Language.sem_preamble
          ~lexemes:spec.Language.lexemes ~max_len (Language.table lang)
      in
      let j =
        Analyze.Ambig.to_json ~language:lang_name
          (Analyze.Ambig.analyze config)
      in
      Mutex.lock t.ambig_m;
      Hashtbl.replace t.ambig_cache key j;
      Mutex.unlock t.ambig_m;
      j

let do_ambig t ~req ~id ~doc ~max_len () =
  with_entry t ~req ~id doc @@ fun e ->
  P.ok ~req ~id
    (Json.Obj
       [
         ("doc", Json.String doc);
         ("report", ambig_report t e.Pool.lang_name e.Pool.lang max_len);
       ])

let do_doc_stats t ~req ~id ~doc ~metrics () =
  with_entry t ~req ~id doc @@ fun e ->
  let s = e.Pool.session in
  P.ok ~req ~id
    (Json.Obj
       ([
          ("doc", Json.String doc);
          ("lang", Json.String e.Pool.lang_name);
          ("tokens", Json.Int (Parsedag.Node.token_count (Session.root s)));
          ("has_errors", Json.Bool (Session.has_errors s));
        ]
       @
       if metrics then [ ("metrics", Metrics.to_json (Session.metrics s)) ]
       else []))

(* Close skips heal-on-touch deliberately: rebuilding a session only to
   discard it would waste a full parse. *)
let do_close t ~req ~id ~doc () =
  match Pool.find t.pool doc with
  | None ->
      P.err ~req ~id { P.code = P.e_unknown_doc; message = "unknown doc " ^ doc }
  | Some _ ->
      Pool.remove t.pool doc;
      P.ok ~req ~id
        (Json.Obj [ ("doc", Json.String doc); ("closed", Json.Bool true) ])

(* ------------------------------------------------------------------ *)
(* Server-scoped introspection — runs inline on the dispatcher.        *)

let health t =
  Json.Obj
    [
      ("docs", Json.List (List.map (fun d -> Json.String d) (Pool.ids t.pool)));
      ("requests", Json.Int t.served);
      ("jobs", Json.Int (jobs t));
      ("busy", Json.Int (Scheduler.busy t.sched));
      ("executed", Json.Int (Scheduler.executed t.sched));
      ( "queues",
        Json.Obj
          (List.map
             (fun (k, n) -> (k, Json.Int n))
             (Scheduler.depths t.sched)) );
      ("reorder_depth", Json.Int (Writer.depth t.writer));
      ("inflight", Json.Int (inflight t));
      ("flight_depth", Json.Int (Flight.depth t.flight));
      ("stopping", Json.Bool (Atomic.get t.stopping));
      ("shed", Json.Int (Atomic.get t.shed));
      ("retried", Json.Int (Atomic.get t.retried));
      ("cancelled", Json.Int (Atomic.get t.cancelled));
      ("supervised_restarts", Json.Int (Scheduler.restarts t.sched));
      ("sink_errors", Json.Int (Atomic.get t.writer.Writer.sink_errors));
      ( "quarantined",
        Json.List
          (List.map (fun d -> Json.String d) (Pool.poisoned t.pool)) );
      ( "trace",
        Json.Obj
          [
            ("enabled", Json.Bool (Trace.enabled ()));
            ("recorded", Json.Int (Trace.recorded ()));
            ("dropped", Json.Int (Trace.dropped ()));
          ] );
    ]

let flight t = Flight.to_json t.flight

let telemetry t ~req ~id ~view =
  let body =
    match view with
    | "metrics" ->
        Json.Obj
          [
            ( "openmetrics",
              Json.String
                (Metrics.Openmetrics.render (Metrics.snapshot ())) );
          ]
    | "flight" -> flight t
    | _ -> health t
  in
  P.ok ~req ~id body

let server_stats t ~req ~id ~metrics =
  P.ok ~req ~id
    (Json.Obj
       ([
          ("docs", Json.List (List.map (fun d -> Json.String d) (Pool.ids t.pool)));
          ("requests", Json.Int t.served);
          ( "languages",
            Json.List
              (List.map (fun l -> Json.String l) (List.sort compare t.loaded))
          );
          ("jobs", Json.Int (jobs t));
        ]
       @
       if metrics then [ ("metrics", Metrics.to_json (Metrics.snapshot ())) ]
       else []))

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)

(* A handler must ALWAYS complete its sequence slot, or the ordered
   writer stalls every later response: uncaught exceptions become
   [e_internal] envelopes (quarantining the document when the handler
   mutates it), a crashed worker domain becomes [e_worker] through the
   supervisor's [on_crash], a shed request becomes [e_overloaded] from
   the dispatcher.  The response slot's CAS discipline guarantees
   exactly one of those wins.  The scheduled job runs under the
   request's correlation id, so every trace event it emits carries
   [rid]. *)
let submit ?(sheddable = false) ?(mutates = false) t ~seq ~key ~id handler =
  let slot = Atomic.make slot_pending in
  if sheddable then Queue.push (seq, id, slot) t.pending;
  let on_crash ~started ~attempt =
    if (not started) && attempt = 0 then begin
      (* The job never began: nothing observable happened, so one
         retry is safe.  It goes back at the FRONT of its document's
         queue — per-document response order is preserved. *)
      Atomic.incr t.retried;
      Metrics.incr m_retried;
      `Retry
    end
    else begin
      if started && mutates then quarantine t ~req:seq ~doc:key;
      let claimed =
        Atomic.compare_and_set slot slot_pending slot_running
        || Atomic.get slot = slot_running
      in
      if claimed then
        respond_err t seq ~id
          {
            P.code = P.e_worker;
            message =
              (if started then
                 "worker domain crashed while executing the request"
               else "worker domain crashed twice before the request started");
          };
      `Give_up
    end
  in
  Scheduler.submit t.sched ~key ~on_crash (fun () ->
      if Atomic.compare_and_set slot slot_pending slot_running then begin
        let line =
          Trace.with_request (string_of_int seq) (fun () ->
              try handler () with
              | Fault.Domain_killed as e ->
                  (* Not ours to absorb: the scheduler's supervisor
                     must see the domain die. *)
                  raise e
              | exn ->
                  Metrics.incr m_errors;
                  if mutates then quarantine t ~req:seq ~doc:key;
                  P.err ~req:seq ~id
                    { P.code = P.e_internal; message = Printexc.to_string exn })
        in
        respond t seq line
      end)

let meth_name = function
  | P.Open _ -> "open"
  | P.Edit _ -> "edit"
  | P.Parse _ -> "parse"
  | P.Errors _ -> "errors"
  | P.Diag _ -> "diag"
  | P.Ambig _ -> "ambig"
  | P.Stats _ -> "stats"
  | P.Telemetry _ -> "telemetry"
  | P.Close _ -> "close"

(* Overload shedding (dispatcher-only).  Under global pressure the
   OLDEST queued parse is shed first: it has waited longest, is most
   likely stale (its client may have moved on to a newer revision) and
   freeing it helps every request behind it in its document's queue. *)

let shed_response t seq ~id message =
  Atomic.incr t.shed;
  Metrics.incr m_shed;
  respond_err t seq ~id { P.code = P.e_overloaded; message }

(* Entries whose slot already settled (ran or shed) are dead weight;
   dropping them from the front keeps the queue bounded by the number
   of genuinely pending parses. *)
let rec prune_pending t =
  match Queue.peek_opt t.pending with
  | Some (_, _, slot) when Atomic.get slot <> slot_pending ->
      ignore (Queue.pop t.pending);
      prune_pending t
  | _ -> ()

let try_shed_oldest t =
  let rec go () =
    match Queue.take_opt t.pending with
    | None -> false
    | Some (seq, id, slot) ->
        if Atomic.compare_and_set slot slot_pending slot_shed then begin
          shed_response t seq ~id "shed under overload (oldest queued parse)";
          true
        end
        else go ()  (* already running or settled: stale entry, drop *)
  in
  go ()

(* Admission control for a document-keyed request.  [Close] is always
   admitted — under overload a client must still be able to release
   documents.  Returns [true] when the request may be enqueued. *)
let admit t ~seq ~id req ~doc =
  match req with
  | P.Close _ -> true
  | _ ->
      if
        t.max_doc_queue > 0
        && Scheduler.depth t.sched ~key:doc >= t.max_doc_queue
      then begin
        shed_response t seq ~id
          (Printf.sprintf "queue full for doc %s (cap %d)" doc t.max_doc_queue);
        false
      end
      else if
        t.max_inflight > 0
        && inflight t > t.max_inflight
        && not (try_shed_oldest t)
      then begin
        shed_response t seq ~id
          (Printf.sprintf "server overloaded (%d requests in flight)"
             (inflight t));
        false
      end
      else true

(* Accept one request: assign its sequence slot and meta record.  Every
   accepted sequence number MUST eventually reach [respond]. *)
let accept t ?(meth = "?") ?doc ?(id = Json.Null) () =
  let seq = t.seq in
  t.seq <- t.seq + 1;
  t.served <- t.served + 1;
  Metrics.incr m_requests;
  put_meta t seq { m_meth = meth; m_doc = doc; m_id = id; m_t0 = now_ms () };
  seq

(* The daemon's line reader discards oversized lines without
   materialising them; it reports them here so the client still gets
   its [-32005] and the access log its entry. *)
let reject_oversized t ~bytes =
  let seq = accept t () in
  respond_err t seq ~id:Json.Null
    {
      P.code = P.e_payload;
      message =
        Printf.sprintf "request of %d bytes exceeds the %d-byte cap" bytes
          t.max_payload;
    }

let handle_line t line =
  if String.trim line <> "" then begin
    prune_pending t;
    let fired = Wheel.tick t.wheel ~now:(now_ms ()) in
    if fired > 0 then begin
      Atomic.fetch_and_add t.cancelled fired |> ignore;
      for _ = 1 to fired do Metrics.incr m_cancelled done
    end;
    if Atomic.get t.stopping then begin
      (* Draining: admission is closed.  Decode just enough to echo the
         client's id (skipping oversized lines). *)
      let id =
        if String.length line > t.max_payload then Json.Null
        else
          match P.decode line with Ok (id, _) | Error (id, _) -> id
      in
      let seq = accept t ~id () in
      respond_err t seq ~id
        { P.code = P.e_shutting_down; message = "server is shutting down" }
    end
    else if String.length line > t.max_payload then
      let seq = accept t () in
      respond_err t seq ~id:Json.Null
        {
          P.code = P.e_payload;
          message =
            Printf.sprintf "request of %d bytes exceeds the %d-byte cap"
              (String.length line) t.max_payload;
        }
    else
      match P.decode line with
      | Error (id, e) ->
          let seq = accept t ~id () in
          respond_err t seq ~id e
      | Ok (id, req) -> (
          let seq = accept t ~meth:(meth_name req) ?doc:(P.doc_of req) ~id () in
          let reject code message =
            respond_err t seq ~id { P.code = code; message }
          in
          match req with
          | P.Stats { doc = None; metrics } ->
              respond t seq (server_stats t ~req:seq ~id ~metrics)
          | P.Telemetry { view } -> respond t seq (telemetry t ~req:seq ~id ~view)
          | P.Open { doc; lang; text; budget } -> (
              if Live.mem t.live doc then
                reject P.e_doc_exists ("doc already open: " ^ doc)
              else
                match Registry.find lang with
                | None -> reject P.e_unknown_lang ("unknown language " ^ lang)
                | Some l ->
                    if admit t ~seq ~id req ~doc then begin
                      (* Force the shared lazies HERE, on the single
                         dispatcher thread: Lazy.force is not safe
                         against concurrent forcing from worker domains,
                         and this is also what guarantees one table
                         build per language per process. *)
                      Trace.with_request (string_of_int seq) (fun () ->
                          Registry.force l);
                      if not (List.mem lang t.loaded) then
                        t.loaded <- lang :: t.loaded;
                      Live.add t.live doc;
                      submit ~mutates:true t ~seq ~key:doc ~id
                        (do_open t ~req:seq ~id ~doc ~lang_name:lang l ~text
                           ~budget)
                    end)
          | _ -> (
              let doc = Option.get (P.doc_of req) in
              if not (Live.mem t.live doc) then
                reject P.e_unknown_doc ("unknown doc " ^ doc)
              else if admit t ~seq ~id req ~doc then begin
                (match req with
                | P.Close _ ->
                    (* Unregister synchronously: a request sent after the
                       close is answered [unknown doc] even though the
                       session teardown itself runs later, in order. *)
                    Live.remove t.live doc
                | _ -> ());
                match req with
                | P.Edit { edits; _ } ->
                    submit ~mutates:true t ~seq ~key:doc ~id
                      (do_edit t ~req:seq ~id ~doc edits)
                | P.Parse { budget; timing; metrics; _ } ->
                    submit ~sheddable:true ~mutates:true t ~seq ~key:doc ~id
                      (do_parse ~req:seq ~id ~doc ~budget ~timing ~metrics t)
                | P.Errors _ ->
                    submit t ~seq ~key:doc ~id (do_errors t ~req:seq ~id ~doc)
                | P.Diag { metrics; _ } ->
                    submit ~mutates:true t ~seq ~key:doc ~id
                      (do_diag t ~req:seq ~id ~doc ~metrics)
                | P.Ambig { max_len; _ } ->
                    submit t ~seq ~key:doc ~id
                      (do_ambig t ~req:seq ~id ~doc ~max_len)
                | P.Stats { metrics; _ } ->
                    submit t ~seq ~key:doc ~id
                      (do_doc_stats t ~req:seq ~id ~doc ~metrics)
                | P.Close _ ->
                    submit t ~seq ~key:doc ~id (do_close t ~req:seq ~id ~doc)
                | P.Open _ | P.Telemetry _ -> assert false
              end))
  end
