(* Per-key serialisation is carried by a tiny state machine per key:

     Idle    — no pending jobs, not on the ready queue
     Queued  — pending jobs, waiting on the ready queue
     Running — a worker is executing this key's next job

   A key is on the ready queue exactly when Queued, and at most one
   worker runs a given key at a time, so jobs with equal keys execute in
   submission order without overlap.  Workers take ONE job per
   dispatch — a key with a long backlog cannot starve its siblings.

   Supervision: a worker domain that dies while holding a job (the
   [Fault.Domain_killed] injection, standing in for an abrupt domain
   death) is trapped at the last possible frame of the worker body.  The
   dying worker settles its job — the submitter's [on_crash] callback
   decides between a single front-of-queue retry (the job never started)
   and giving up (the engine answers [-32006 worker-crashed]) — restores
   the key's state machine so the per-document FIFO resumes in order,
   spawns its own replacement domain, and exits.  The worker count is
   therefore invariant across crashes, and a killed domain is replaced
   within the dispatch cycle that killed it. *)

let m_restarts = Metrics.counter "server.supervised_restarts"
let m_crashes = Metrics.counter "server.worker_crashes"

type dstate = Idle | Queued | Running

type job = {
  run : unit -> unit;
  on_crash : (started:bool -> attempt:int -> [ `Retry | `Give_up ]) option;
  mutable attempts : int;
}

(* [front] holds a job re-queued by crash recovery: it was the head of
   the FIFO when the worker died, so it must run before anything in
   [pending] — per-key submission order is preserved across a retry. *)
type dq = {
  pending : job Queue.t;
  mutable front : job option;
  mutable state : dstate;
}

let dq_empty dq = dq.front = None && Queue.is_empty dq.pending

let dq_take dq =
  match dq.front with
  | Some j ->
      dq.front <- None;
      j
  | None -> Queue.pop dq.pending

type t = {
  m : Mutex.t;
  work : Condition.t;  (* signalled when the ready queue grows *)
  idle : Condition.t;  (* signalled when in-flight work completes *)
  keys : (string, dq) Hashtbl.t;
  ready : string Queue.t;
  mutable unfinished : int;  (* submitted and not yet completed *)
  mutable busy : int;  (* workers currently executing a job *)
  mutable executed : int;  (* jobs completed since creation *)
  mutable restarts : int;  (* replacement domains spawned after crashes *)
  mutable alive : int;  (* live worker domains *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
      (* every domain ever spawned, crashed ones included: joined at
         shutdown (a crashed worker's body has returned, so its join is
         immediate) *)
}

let jobs t = t.alive

type disposition = Done | Crashed of { started : bool }

(* Run one job, classifying how it ended.  [Fault.Domain_killed] is the
   only exception treated as a domain death; anything else is a handler
   bug the submitter has already converted to a structured response (or
   failed to — either way the scheduler must keep serving). *)
let execute job =
  if Fault.fire Fault.Kill_pre then Crashed { started = false }
  else
    match job.run () with
    | () -> Done
    | exception Fault.Domain_killed -> Crashed { started = true }
    | exception _ -> Done

let settle_crash job ~started =
  Metrics.incr m_crashes;
  match job.on_crash with
  | None -> `Give_up
  | Some f -> ( try f ~started ~attempt:job.attempts with _ -> `Give_up)

let rec worker t =
  Mutex.lock t.m;
  while (not t.stop) && Queue.is_empty t.ready do
    Condition.wait t.work t.m
  done;
  if t.stop && Queue.is_empty t.ready then begin
    t.alive <- t.alive - 1;
    Mutex.unlock t.m
  end
  else begin
    let key = Queue.pop t.ready in
    let dq = Hashtbl.find t.keys key in
    dq.state <- Running;
    let job = dq_take dq in
    t.busy <- t.busy + 1;
    Mutex.unlock t.m;
    Fault.point Fault.Stall;
    match execute job with
    | Done ->
        Mutex.lock t.m;
        t.busy <- t.busy - 1;
        t.executed <- t.executed + 1;
        t.unfinished <- t.unfinished - 1;
        if dq_empty dq then dq.state <- Idle
        else begin
          dq.state <- Queued;
          Queue.push key t.ready;
          Condition.signal t.work
        end;
        if t.unfinished = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.m;
        worker t
    | Crashed { started } ->
        (* The supervisor path: this worker domain is now considered
           dead.  Settle the job, restore the key's FIFO, hand the
           worker slot to a replacement, and fall off the domain. *)
        let verdict = settle_crash job ~started in
        Mutex.lock t.m;
        t.busy <- t.busy - 1;
        (match verdict with
        | `Retry ->
            job.attempts <- job.attempts + 1;
            dq.front <- Some job
        | `Give_up ->
            t.executed <- t.executed + 1;
            t.unfinished <- t.unfinished - 1);
        if dq_empty dq then dq.state <- Idle
        else begin
          dq.state <- Queued;
          Queue.push key t.ready;
          Condition.signal t.work
        end;
        if t.unfinished = 0 then Condition.broadcast t.idle;
        if not t.stop then begin
          t.restarts <- t.restarts + 1;
          Metrics.incr m_restarts;
          t.workers <- Domain.spawn (fun () -> worker t) :: t.workers
        end
        else t.alive <- t.alive - 1;
        Mutex.unlock t.m
  end

let create ~jobs =
  let jobs = max 0 (min jobs (max 1 (Domain.recommended_domain_count () - 1))) in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      keys = Hashtbl.create 16;
      ready = Queue.create ();
      unfinished = 0;
      busy = 0;
      executed = 0;
      restarts = 0;
      alive = jobs;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ~key ?on_crash run =
  let job = { run; on_crash; attempts = 0 } in
  if t.workers = [] then begin
    (* Inline mode: deterministic, single-threaded.  Crash faults are
       settled through the same ladder — one retry for a job that never
       started, then give up — so a committed chaos plan replays
       byte-identically under [iglrd --serial]. *)
    Fault.point Fault.Stall;
    let rec go () =
      match execute job with
      | Done -> ()
      | Crashed { started } -> (
          t.restarts <- t.restarts + 1;
          Metrics.incr m_restarts;
          match settle_crash job ~started with
          | `Retry ->
              job.attempts <- job.attempts + 1;
              go ()
          | `Give_up -> ())
    in
    go ();
    t.executed <- t.executed + 1
  end
  else begin
    Mutex.lock t.m;
    let dq =
      match Hashtbl.find_opt t.keys key with
      | Some dq -> dq
      | None ->
          let dq = { pending = Queue.create (); front = None; state = Idle } in
          Hashtbl.replace t.keys key dq;
          dq
    in
    Queue.push job dq.pending;
    t.unfinished <- t.unfinished + 1;
    if dq.state = Idle then begin
      dq.state <- Queued;
      Queue.push key t.ready;
      Condition.signal t.work
    end;
    Mutex.unlock t.m
  end

let busy t =
  Mutex.lock t.m;
  let b = t.busy in
  Mutex.unlock t.m;
  b

let executed t =
  Mutex.lock t.m;
  let e = t.executed in
  Mutex.unlock t.m;
  e

let restarts t =
  Mutex.lock t.m;
  let r = t.restarts in
  Mutex.unlock t.m;
  r

let depth t ~key =
  Mutex.lock t.m;
  let d =
    match Hashtbl.find_opt t.keys key with
    | None -> 0
    | Some dq ->
        Queue.length dq.pending
        + (match dq.front with Some _ -> 1 | None -> 0)
        + (if dq.state = Running then 1 else 0)
  in
  Mutex.unlock t.m;
  d

let depths t =
  Mutex.lock t.m;
  let ds =
    Hashtbl.fold
      (fun key dq acc ->
        let n =
          Queue.length dq.pending
          + match dq.front with Some _ -> 1 | None -> 0
        in
        if n > 0 || dq.state <> Idle then (key, n) :: acc else acc)
      t.keys []
  in
  Mutex.unlock t.m;
  List.sort compare ds

let drain t =
  if t.workers <> [] then begin
    Mutex.lock t.m;
    while t.unfinished > 0 do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m
  end

let shutdown t =
  drain t;
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.alive <- 0
