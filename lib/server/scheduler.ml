(* Per-key serialisation is carried by a tiny state machine per key:

     Idle    — no pending jobs, not on the ready queue
     Queued  — pending jobs, waiting on the ready queue
     Running — a worker is executing this key's next job

   A key is on the ready queue exactly when Queued, and at most one
   worker runs a given key at a time, so jobs with equal keys execute in
   submission order without overlap.  Workers take ONE job per
   dispatch — a key with a long backlog cannot starve its siblings. *)

type dstate = Idle | Queued | Running
type dq = { pending : (unit -> unit) Queue.t; mutable state : dstate }

type t = {
  m : Mutex.t;
  work : Condition.t;  (* signalled when the ready queue grows *)
  idle : Condition.t;  (* signalled when in-flight work completes *)
  keys : (string, dq) Hashtbl.t;
  ready : string Queue.t;
  mutable unfinished : int;  (* submitted and not yet completed *)
  mutable busy : int;  (* workers currently executing a job *)
  mutable executed : int;  (* jobs completed since creation *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = List.length t.workers

let rec worker t =
  Mutex.lock t.m;
  while (not t.stop) && Queue.is_empty t.ready do
    Condition.wait t.work t.m
  done;
  if t.stop && Queue.is_empty t.ready then Mutex.unlock t.m
  else begin
    let key = Queue.pop t.ready in
    let dq = Hashtbl.find t.keys key in
    dq.state <- Running;
    let job = Queue.pop dq.pending in
    t.busy <- t.busy + 1;
    Mutex.unlock t.m;
    (try job () with _ -> ());
    Mutex.lock t.m;
    t.busy <- t.busy - 1;
    t.executed <- t.executed + 1;
    t.unfinished <- t.unfinished - 1;
    if Queue.is_empty dq.pending then dq.state <- Idle
    else begin
      dq.state <- Queued;
      Queue.push key t.ready;
      Condition.signal t.work
    end;
    if t.unfinished = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.m;
    worker t
  end

let create ~jobs =
  let jobs = max 0 (min jobs (max 1 (Domain.recommended_domain_count () - 1))) in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      keys = Hashtbl.create 16;
      ready = Queue.create ();
      unfinished = 0;
      busy = 0;
      executed = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ~key job =
  if t.workers = [] then begin
    (* inline mode: deterministic, single-threaded *)
    (try job () with _ -> ());
    t.executed <- t.executed + 1
  end
  else begin
    Mutex.lock t.m;
    let dq =
      match Hashtbl.find_opt t.keys key with
      | Some dq -> dq
      | None ->
          let dq = { pending = Queue.create (); state = Idle } in
          Hashtbl.replace t.keys key dq;
          dq
    in
    Queue.push job dq.pending;
    t.unfinished <- t.unfinished + 1;
    if dq.state = Idle then begin
      dq.state <- Queued;
      Queue.push key t.ready;
      Condition.signal t.work
    end;
    Mutex.unlock t.m
  end

let busy t =
  Mutex.lock t.m;
  let b = t.busy in
  Mutex.unlock t.m;
  b

let executed t =
  Mutex.lock t.m;
  let e = t.executed in
  Mutex.unlock t.m;
  e

let depths t =
  Mutex.lock t.m;
  let ds =
    Hashtbl.fold
      (fun key dq acc ->
        let n = Queue.length dq.pending in
        if n > 0 || dq.state <> Idle then (key, n) :: acc else acc)
      t.keys []
  in
  Mutex.unlock t.m;
  List.sort compare ds

let drain t =
  if t.workers <> [] then begin
    Mutex.lock t.m;
    while t.unfinished > 0 do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m
  end

let shutdown t =
  drain t;
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []
