(** Earley's recognizer (ref [2]) — the classical general-CFG baseline the
    GLR literature compares against (§2.1, footnote 4) — extended with a
    derivation counter and parse-tree extractor over the same chart, used
    by the ambiguity analyzer ({!Analyze.Ambig}) as its ground-truth
    oracle: a sentence is really ambiguous iff it has two or more distinct
    derivation trees.

    Standard three-rule chart parser with the nullable-prediction fix
    (a predicted nullable nonterminal immediately advances its
    predictor), so ε-grammars are handled correctly. *)

type result = {
  accepted : bool;
  items : int;  (** total chart items (work measure) *)
}

(** [recognize g terms] — does the start symbol derive the terminal
    string? *)
val recognize : Grammar.Cfg.t -> int array -> result

(** A concrete derivation tree: the production applied at this node plus
    one kid per right-hand-side symbol. *)
type tree = { t_prod : int; t_kids : kid list }

and kid = K_term of int | K_nt of tree

(** [count_derivations g terms] — the number of distinct derivation trees
    of [terms] from the start symbol, saturating at [limit] (default
    1000).  Computed by a span dynamic program over the Earley chart
    (only chart-completed spans are explored), memoized per span.  On
    grammars with unit/ε derivation cycles the true count is infinite;
    cycle back-edges contribute zero, so the result is a lower bound —
    never an overcount, which is the direction witness confirmation
    needs. *)
val count_derivations : ?limit:int -> Grammar.Cfg.t -> int array -> int

(** [derivations g terms] — up to [limit] (default 2) structurally
    distinct derivation trees of [terms], in a deterministic order
    (production-id, then split position).  Empty when the sentence is not
    in the language. *)
val derivations : ?limit:int -> Grammar.Cfg.t -> int array -> tree list

(** Render a tree as a bracketed derivation, e.g.
    [expr(expr(id) + expr(id))]. *)
val pp_tree : Grammar.Cfg.t -> Format.formatter -> tree -> unit

(** Production ids used anywhere in the tree, with repetition (a
    multiset, in no particular order). *)
val tree_prods : tree -> int list
