module Cfg = Grammar.Cfg

type result = { accepted : bool; items : int }

type item = { prod : int; dot : int; origin : int }

(* Classical three-rule chart construction with the nullable-prediction
   fix.  Shared by the recognizer and the derivation counter/extractor:
   the chart at position [k] holds every viable item, so a span
   (nonterminal, i, j) is derivable in a viable context iff a completed
   item for it sits in chart.(j) — except ε spans, where the nullable
   shortcut can skip the completer chain; those are handled grammar-side
   below. *)
let build_chart g terms =
  let analysis = Grammar.Analysis.compute g in
  let n = Array.length terms in
  let chart = Array.init (n + 1) (fun _ -> Hashtbl.create 64) in
  let queues = Array.init (n + 1) (fun _ -> Queue.create ()) in
  let total = ref 0 in
  let add k item =
    if not (Hashtbl.mem chart.(k) item) then begin
      Hashtbl.replace chart.(k) item ();
      Queue.add item queues.(k);
      incr total
    end
  in
  Array.iter
    (fun pid -> add 0 { prod = pid; dot = 0; origin = 0 })
    (Cfg.productions_of g (Cfg.start g));
  for k = 0 to n do
    while not (Queue.is_empty queues.(k)) do
      let it = Queue.pop queues.(k) in
      let prod = Cfg.production g it.prod in
      if it.dot < Array.length prod.Cfg.rhs then begin
        match prod.Cfg.rhs.(it.dot) with
        | Cfg.T t ->
            (* Scanner. *)
            if k < n && terms.(k) = t then
              add (k + 1) { it with dot = it.dot + 1 }
        | Cfg.N m ->
            (* Predictor, with the nullable shortcut. *)
            Array.iter
              (fun pid -> add k { prod = pid; dot = 0; origin = k })
              (Cfg.productions_of g m);
            if Grammar.Analysis.nullable analysis m then
              add k { it with dot = it.dot + 1 }
      end
      else
        (* Completer: advance items waiting on this nonterminal at the
           origin position. *)
        let lhs = prod.Cfg.lhs in
        (* Snapshot before adding: the origin set may be the one being
           extended (ε spans); completeness for those is guaranteed by the
           nullable-prediction shortcut. *)
        let advance = ref [] in
        Hashtbl.iter
          (fun (cand : item) () ->
            let cp = Cfg.production g cand.prod in
            if
              cand.dot < Array.length cp.Cfg.rhs
              && cp.Cfg.rhs.(cand.dot) = Cfg.N lhs
            then advance := cand :: !advance)
          chart.(it.origin);
        List.iter (fun cand -> add k { cand with dot = cand.dot + 1 }) !advance
    done
  done;
  (chart, !total)

let recognize g terms =
  let chart, total = build_chart g terms in
  let n = Array.length terms in
  let accepted =
    Hashtbl.fold
      (fun (it : item) () acc ->
        acc
        ||
        let prod = Cfg.production g it.prod in
        prod.Cfg.lhs = Cfg.start g
        && it.origin = 0
        && it.dot = Array.length prod.Cfg.rhs)
      chart.(n) false
  in
  { accepted; items = total }

(* ------------------------------------------------------------------ *)
(* Derivation counting and tree extraction.                            *)

type tree = { t_prod : int; t_kids : kid list }
and kid = K_term of int | K_nt of tree

(* Index of completed spans: (lhs, origin, end) present in the chart. *)
let completed_spans g chart =
  let spans = Hashtbl.create 256 in
  Array.iteri
    (fun k tbl ->
      Hashtbl.iter
        (fun (it : item) () ->
          let p = Cfg.production g it.prod in
          if it.dot = Array.length p.Cfg.rhs then
            Hashtbl.replace spans (p.Cfg.lhs, it.origin, k) ())
        tbl)
    chart;
  spans

(* Both walks guard against unit/ε derivation cycles (A =>+ A spanning
   the same tokens) with an in-progress set: a back edge contributes 0
   derivations / no trees.  Cyclic grammars have infinitely many trees
   there, so the result is a lower bound — safe for witness confirmation
   (never overcounts), and lint reports such grammars as errors anyway. *)

let count_derivations ?(limit = 1000) g terms =
  let chart, _ = build_chart g terms in
  let spans = completed_spans g chart in
  let n = Array.length terms in
  let sat_add a b = if a + b > limit || a + b < 0 then limit else a + b in
  let sat_mul a b =
    if a = 0 || b = 0 then 0 else if a > limit / b then limit else a * b
  in
  let memo = Hashtbl.create 256 in
  let seq_memo = Hashtbl.create 1024 in
  let in_progress = Hashtbl.create 64 in
  let rec count nt i j =
    if i = j then count_nullable nt
    else if not (Hashtbl.mem spans (nt, i, j)) then 0
    else via_prods nt i j
  and count_nullable nt = via_prods_eps nt
  and via_prods nt i j =
    let key = (nt, i, j) in
    match Hashtbl.find_opt memo key with
    | Some c -> c
    | None ->
        if Hashtbl.mem in_progress key then 0
        else begin
          Hashtbl.replace in_progress key ();
          let c =
            Array.fold_left
              (fun acc pid ->
                let p = Cfg.production g pid in
                sat_add acc (seq pid p.Cfg.rhs 0 i j))
              0
              (Cfg.productions_of g nt)
          in
          Hashtbl.remove in_progress key;
          Hashtbl.replace memo key c;
          c
        end
  and via_prods_eps nt =
    (* ε spans bypass the chart (the nullable shortcut may leave the
       completer chain out); same production walk restricted to i = j,
       keyed by position -1 so ε memoization is position-independent. *)
    let key = (nt, -1, -1) in
    match Hashtbl.find_opt memo key with
    | Some c -> c
    | None ->
        if Hashtbl.mem in_progress key then 0
        else begin
          Hashtbl.replace in_progress key ();
          let c =
            Array.fold_left
              (fun acc pid ->
                let p = Cfg.production g pid in
                sat_add acc (seq_eps p.Cfg.rhs 0))
              0
              (Cfg.productions_of g nt)
          in
          Hashtbl.remove in_progress key;
          Hashtbl.replace memo key c;
          c
        end
  and seq pid rhs k i j =
    match Hashtbl.find_opt seq_memo (pid, k, i, j) with
    | Some c -> c
    | None ->
        let c =
          if k = Array.length rhs then if i = j then 1 else 0
          else
            match rhs.(k) with
            | Cfg.T t ->
                if i < j && terms.(i) = t then seq pid rhs (k + 1) (i + 1) j
                else 0
            | Cfg.N m ->
                let acc = ref 0 in
                for h = i to j do
                  let c = count m i h in
                  if c > 0 then
                    acc := sat_add !acc (sat_mul c (seq pid rhs (k + 1) h j))
                done;
                !acc
        in
        Hashtbl.replace seq_memo (pid, k, i, j) c;
        c
  and seq_eps rhs k =
    if k = Array.length rhs then 1
    else
      match rhs.(k) with
      | Cfg.T _ -> 0
      | Cfg.N m -> sat_mul (via_prods_eps m) (seq_eps rhs (k + 1))
  in
  count (Cfg.start g) 0 n

let derivations ?(limit = 2) g terms =
  let chart, _ = build_chart g terms in
  let spans = completed_spans g chart in
  let n = Array.length terms in
  let take k l =
    let rec go k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: go (k - 1) rest
    in
    go k l
  in
  let memo = Hashtbl.create 256 in
  let in_progress = Hashtbl.create 64 in
  let rec trees nt i j =
    if i < j && not (Hashtbl.mem spans (nt, i, j)) then []
    else
      let key = (nt, i, j) in
      match Hashtbl.find_opt memo key with
      | Some ts -> ts
      | None ->
          if Hashtbl.mem in_progress key then []
          else begin
            Hashtbl.replace in_progress key ();
            let ts =
              Array.fold_left
                (fun acc pid ->
                  if List.length acc >= limit then acc
                  else
                    let p = Cfg.production g pid in
                    let kid_lists = seq p.Cfg.rhs 0 i j in
                    acc
                    @ List.map
                        (fun kids -> { t_prod = pid; t_kids = kids })
                        kid_lists)
                []
                (Cfg.productions_of g nt)
              |> take limit
            in
            Hashtbl.remove in_progress key;
            Hashtbl.replace memo key ts;
            ts
          end
  and seq rhs k i j =
    if k = Array.length rhs then if i = j then [ [] ] else []
    else
      match rhs.(k) with
      | Cfg.T t ->
          if i < j && terms.(i) = t then
            List.map (fun kids -> K_term t :: kids) (seq rhs (k + 1) (i + 1) j)
          else []
      | Cfg.N m ->
          let acc = ref [] in
          (try
             for h = i to j do
               List.iter
                 (fun tr ->
                   List.iter
                     (fun kids ->
                       if List.length !acc >= limit then raise Exit;
                       acc := (K_nt tr :: kids) :: !acc)
                     (seq rhs (k + 1) h j))
                 (trees m i h)
             done
           with Exit -> ());
          List.rev !acc
  in
  trees (Cfg.start g) 0 n

let rec pp_tree g ppf tr =
  let p = Cfg.production g tr.t_prod in
  Format.fprintf ppf "@[<hov 1>%s(" (Cfg.nonterminal_name g p.Cfg.lhs);
  List.iteri
    (fun i kid ->
      if i > 0 then Format.fprintf ppf "@ ";
      match kid with
      | K_term t -> Format.pp_print_string ppf (Cfg.terminal_name g t)
      | K_nt sub -> pp_tree g ppf sub)
    tr.t_kids;
  Format.fprintf ppf ")@]"

let rec tree_prods tr =
  List.fold_left
    (fun acc kid ->
      match kid with K_term _ -> acc | K_nt sub -> tree_prods sub @ acc)
    [ tr.t_prod ] tr.t_kids
