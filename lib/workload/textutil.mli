(** Linear-time substring search (KMP), shared by the bench harness and
    the edit-script generators. *)

val find : ?from:int -> string -> pat:string -> int option
(** [find ?from text ~pat] — offset of the first occurrence of [pat] at
    or after [from].  @raise Invalid_argument on an empty pattern or an
    out-of-range start. *)

val occurrences : ?from:int -> string -> pat:string -> int list
(** All non-overlapping occurrence offsets, ascending. *)
