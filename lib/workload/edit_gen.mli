(** Edit-script generation for the incremental benchmarks (§5: repeated
    self-cancelling modifications to individual tokens). *)

type edit = { e_pos : int; e_del : int; e_insert : string }

(** [token_edits ~seed ~count text] — [count] single-token edits at random
    identifier/number positions in [text].  Each edit replaces one byte of
    a token with a different alphanumeric byte, so token boundaries are
    stable and the edit is syntactically neutral. *)
val token_edits : seed:int -> count:int -> string -> edit list

(** [self_cancelling e text] — the inverse edit restoring [text]'s
    contents at [e]'s position (apply [e], reparse, apply the inverse,
    reparse: the §5 protocol). *)
val inverse : edit -> string -> edit

(** Apply an edit to a string (for oracle comparisons). *)
val apply : edit -> string -> string

(** [random_script ~seed ~count text] — a deterministic random edit
    script for the differential fuzzer: each edit is drawn against the
    text as already edited by its predecessors (replay with {!apply}).
    Mixes neutral token tweaks, fragment insertion at statement
    boundaries, small deletions, and arbitrary small inserts — the last
    two may break the syntax on purpose, to exercise recovery. *)
val random_script : seed:int -> count:int -> string -> edit list
