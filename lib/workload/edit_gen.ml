type edit = { e_pos : int; e_del : int; e_insert : string }

let is_digit c = c >= '0' && c <= '9'

let token_edits ~seed ~count text =
  let st = Random.State.make [| seed |] in
  let n = String.length text in
  if n = 0 then []
  else
    List.init count (fun _ ->
        (* Replace a digit: digits occur only inside numbers and
           identifier suffixes, so the edit changes a token's text without
           changing the token kind or fusing neighbours (the paper's
           syntactically neutral single-token modification). *)
        let rec probe attempts =
          let p = Random.State.int st n in
          if is_digit text.[p] then p
          else if attempts > 2000 then
            invalid_arg "Edit_gen.token_edits: no digit in text"
          else probe (attempts + 1)
        in
        let p = probe 0 in
        let c = text.[p] in
        let replacement =
          Char.chr (Char.code '0' + ((Char.code c - Char.code '0' + 1) mod 10))
        in
        { e_pos = p; e_del = 1; e_insert = String.make 1 replacement })

let apply e text =
  String.sub text 0 e.e_pos
  ^ e.e_insert
  ^ String.sub text (e.e_pos + e.e_del)
      (String.length text - e.e_pos - e.e_del)

(* Random edit scripts for the differential fuzzer: each edit is drawn
   against the text as already edited, so a script replays deterministically
   from its seed.  The mix covers the interesting damage shapes: neutral
   single-token tweaks, fragment insertion at statement boundaries (found
   with the shared Textutil search), small deletions, and arbitrary small
   inserts that may well break the syntax (exercising recovery). *)
let fragments =
  [| "x"; "1"; " + y9"; ";"; " "; "(2)"; "z = 3;"; "88"; "q"; " * 4" |]

let random_script ~seed ~count text =
  let st = Random.State.make [| seed; 0x5eed |] in
  let cur = ref text in
  List.init count (fun _ ->
      let len = String.length !cur in
      let pick_fragment () =
        fragments.(Random.State.int st (Array.length fragments))
      in
      let random_insert () =
        let pos = if len = 0 then 0 else Random.State.int st (len + 1) in
        { e_pos = pos; e_del = 0; e_insert = pick_fragment () }
      in
      let e =
        if len = 0 then random_insert ()
        else
          match Random.State.int st 4 with
          | 0 -> (
              (* Syntactically neutral digit tweak, if any digit exists. *)
              let rec probe attempts =
                if attempts > 200 then None
                else
                  let p = Random.State.int st len in
                  if is_digit !cur.[p] then Some p else probe (attempts + 1)
              in
              match probe 0 with
              | None -> random_insert ()
              | Some p ->
                  let c = !cur.[p] in
                  let repl =
                    Char.chr
                      (Char.code '0'
                      + ((Char.code c - Char.code '0' + 1) mod 10))
                  in
                  { e_pos = p; e_del = 1; e_insert = String.make 1 repl })
          | 1 -> (
              (* Insert a whole fragment at a statement boundary. *)
              match Textutil.occurrences !cur ~pat:";" with
              | [] -> random_insert ()
              | occs ->
                  let p = List.nth occs (Random.State.int st (List.length occs)) in
                  { e_pos = p + 1; e_del = 0; e_insert = pick_fragment () })
          | 2 ->
              (* Small deletion. *)
              let pos = Random.State.int st len in
              let del = min (1 + Random.State.int st 3) (len - pos) in
              { e_pos = pos; e_del = del; e_insert = "" }
          | _ -> random_insert ()
      in
      cur := apply e !cur;
      e)

let inverse e text =
  {
    e_pos = e.e_pos;
    e_del = String.length e.e_insert;
    e_insert = String.sub text e.e_pos e.e_del;
  }
