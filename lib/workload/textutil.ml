(* Substring search shared by the bench harness and the edit generators.
   Knuth–Morris–Pratt: O(n + m) against the O(n·m) rescan-per-position
   loop it replaces. *)

let failure_table pat =
  let m = String.length pat in
  let fail = Array.make m 0 in
  let k = ref 0 in
  for i = 1 to m - 1 do
    while !k > 0 && pat.[!k] <> pat.[i] do
      k := fail.(!k - 1)
    done;
    if pat.[!k] = pat.[i] then Stdlib.incr k;
    fail.(i) <- !k
  done;
  fail

let find ?(from = 0) text ~pat =
  let n = String.length text and m = String.length pat in
  if m = 0 then invalid_arg "Textutil.find: empty pattern"
  else if from < 0 || from > n then invalid_arg "Textutil.find: bad start"
  else begin
    let fail = failure_table pat in
    let q = ref 0 in
    let hit = ref (-1) in
    let i = ref from in
    while !hit < 0 && !i < n do
      while !q > 0 && pat.[!q] <> text.[!i] do
        q := fail.(!q - 1)
      done;
      if pat.[!q] = text.[!i] then Stdlib.incr q;
      if !q = m then hit := !i - m + 1;
      Stdlib.incr i
    done;
    if !hit < 0 then None else Some !hit
  end

let occurrences ?(from = 0) text ~pat =
  let rec go from acc =
    match find ~from text ~pat with
    | None -> List.rev acc
    | Some i -> go (i + String.length pat) (i :: acc)
  in
  go from []
