(* Shortest terminal yield of every nonterminal (None when unproductive),
   by cost relaxation to a fixpoint.  Moved here from lib/analyze/lint so
   the lint shortest-example search and the ambiguity witness generator
   share one implementation. *)
let yield_fixpoint g =
  let nn = Cfg.num_nonterminals g in
  let cost = Array.make nn max_int in
  let witness = Array.make nn [] in
  let changed = ref true in
  while !changed do
    changed := false;
    Cfg.iter_productions g (fun p ->
        let total = ref 0 and feasible = ref true in
        Array.iter
          (function
            | Cfg.T _ -> incr total
            | Cfg.N n ->
                if cost.(n) = max_int then feasible := false
                else total := !total + cost.(n))
          p.Cfg.rhs;
        if !feasible && !total < cost.(p.Cfg.lhs) then begin
          cost.(p.Cfg.lhs) <- !total;
          witness.(p.Cfg.lhs) <-
            Array.fold_left
              (fun acc s ->
                match s with
                | Cfg.T t -> t :: acc
                | Cfg.N n -> List.rev_append witness.(n) acc)
              [] p.Cfg.rhs
            |> List.rev;
          changed := true
        end)
  done;
  (cost, witness)

let shortest_yields g =
  let cost, witness = yield_fixpoint g in
  fun sym ->
    match sym with
    | Cfg.T t -> Some [ t ]
    | Cfg.N n -> if cost.(n) = max_int then None else Some witness.(n)

let min_yield_len g =
  let cost, _ = yield_fixpoint g in
  fun sym ->
    match sym with
    | Cfg.T _ -> Some 1
    | Cfg.N n -> if cost.(n) = max_int then None else Some cost.(n)

(* ------------------------------------------------------------------ *)
(* Bounded sentence enumeration.                                       *)

let compare_sentence a b =
  let c = compare (List.length a) (List.length b) in
  if c <> 0 then c else compare a b

let enumerate ?(max_count = 600) ?(max_work = 200_000) g ~from ~max_len =
  let cost, _ = yield_fixpoint g in
  let min_sym = function
    | Cfg.T _ -> 1
    | Cfg.N n -> cost.(n)
  in
  (* Admissible lower bound on the final sentence length of a sentential
     form; max_int-safe. *)
  let lower prefix_len rest =
    List.fold_left
      (fun acc s ->
        let m = min_sym s in
        if acc = max_int || m = max_int then max_int else acc + m)
      prefix_len rest
  in
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let q = Queue.create () in
  let work = ref 0 in
  if cost.(from) <> max_int && cost.(from) <= max_len then
    Queue.add ([], [ Cfg.N from ]) q;
  while (not (Queue.is_empty q)) && !work < max_work do
    incr work;
    let rev_prefix, rest = Queue.pop q in
    match rest with
    | [] ->
        let s = List.rev rev_prefix in
        if not (Hashtbl.mem seen s) then begin
          Hashtbl.replace seen s ();
          out := s :: !out
        end
    | Cfg.T t :: tail ->
        Queue.add (t :: rev_prefix, tail) q
    | Cfg.N n :: tail ->
        Array.iter
          (fun pid ->
            let p = Cfg.production g pid in
            let rest' = Array.to_list p.Cfg.rhs @ tail in
            if lower (List.length rev_prefix) rest' <= max_len then
              Queue.add (rev_prefix, rest') q)
          (Cfg.productions_of g n)
  done;
  let sentences = List.sort compare_sentence !out in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take max_count sentences

(* ------------------------------------------------------------------ *)
(* Minimal surrounding contexts.                                       *)

type context = { pre : int list; post : int list }

let context_len c = List.length c.pre + List.length c.post

let compare_ctx a b =
  let c = compare (context_len a) (context_len b) in
  if c <> 0 then c else compare (a.pre, a.post) (b.pre, b.post)

(* k-best (pre, post) contexts of every nonterminal: ctx(start) ∋ ([],[]);
   an occurrence A -> alpha . N beta extends each context of A with the
   shortest yields of alpha and beta.  Relaxed to a fixpoint, keeping the
   [k] smallest distinct contexts per nonterminal.  Keeping only the
   single minimum would shadow structurally distinct routes — e.g. a
   C declaration's top-level context hides the statement-level one, and
   only the latter exhibits the decl-vs-expression ambiguity. *)
let context_fixpoint ?(k = 4) g =
  let cost, witness = yield_fixpoint g in
  let yield_syms syms =
    (* Concatenated shortest yield of a symbol slice; None when any
       member is unproductive. *)
    let ok = ref true in
    let acc =
      List.concat_map
        (function
          | Cfg.T t -> [ t ]
          | Cfg.N n ->
              if cost.(n) = max_int then begin
                ok := false;
                []
              end
              else witness.(n))
        syms
    in
    if !ok then Some acc else None
  in
  let nn = Cfg.num_nonterminals g in
  let ctx : context list array = Array.make nn [] in
  ctx.(Cfg.start g) <- [ { pre = []; post = [] } ];
  (* Insert [c] into the sorted k-best list of [n]; true when it entered
     (strict improvement, so the relaxation terminates). *)
  let insert n c =
    let cur = ctx.(n) in
    if List.exists (fun c' -> compare_ctx c c' = 0) cur then false
    else
      let merged = List.sort compare_ctx (c :: cur) in
      let rec take i = function
        | [] -> []
        | _ when i = 0 -> []
        | x :: rest -> x :: take (i - 1) rest
      in
      let kept = take k merged in
      if kept <> cur then begin
        ctx.(n) <- kept;
        true
      end
      else false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Cfg.iter_productions g (fun p ->
        List.iter
          (fun { pre; post } ->
            let rhs = p.Cfg.rhs in
            Array.iteri
              (fun i s ->
                match s with
                | Cfg.T _ -> ()
                | Cfg.N n -> (
                    let before = Array.to_list (Array.sub rhs 0 i) in
                    let after =
                      Array.to_list
                        (Array.sub rhs (i + 1) (Array.length rhs - i - 1))
                    in
                    match (yield_syms before, yield_syms after) with
                    | Some yb, Some ya ->
                        if insert n { pre = pre @ yb; post = ya @ post }
                        then changed := true
                    | None, _ | _, None -> ()))
              rhs)
          ctx.(p.Cfg.lhs))
  done;
  (ctx, yield_syms)

let occurrence_contexts ?(max_count = 8) g nt =
  let ctx, yield_syms = context_fixpoint g in
  (* One minimal context per occurrence *site* (production, position):
     site diversity matters more than raw shortness, since witnesses of
     an ambiguity may only exist in one structural position. *)
  let sites = ref [] in
  Cfg.iter_productions g (fun p ->
      let rhs = p.Cfg.rhs in
      Array.iteri
        (fun i s ->
          if s = Cfg.N nt then
            let before = Array.to_list (Array.sub rhs 0 i) in
            let after =
              Array.to_list (Array.sub rhs (i + 1) (Array.length rhs - i - 1))
            in
            match (yield_syms before, yield_syms after) with
            | Some yb, Some ya ->
                let cands =
                  List.map
                    (fun { pre; post } ->
                      { pre = pre @ yb; post = ya @ post })
                    ctx.(p.Cfg.lhs)
                in
                let best =
                  List.fold_left
                    (fun acc c ->
                      match acc with
                      | None -> Some c
                      | Some b -> if compare_ctx c b < 0 then Some c else acc)
                    None cands
                in
                Option.iter (fun c -> sites := c :: !sites) best
            | None, _ | _, None -> ())
        rhs);
  let deduped = List.sort_uniq compare_ctx !sites in
  let rec take i = function
    | [] -> []
    | _ when i = 0 -> []
    | x :: rest -> x :: take (i - 1) rest
  in
  take max_count deduped
