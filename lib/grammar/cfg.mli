(** Context-free grammars with extended (regular-right-part) sequence
    notation.

    Terminals and nonterminals are small integers; [symbol] tags which space
    an index lives in.  Terminal [eof] (index 0) is implicit in every
    grammar.  Sequence nonterminals — those introduced by the builder's
    [star]/[plus] notation — are flagged so downstream layers (the parse
    dag) may re-balance their left-recursive spines into logarithmic-depth
    trees, as required by the paper's §3.4 performance model. *)

type symbol = T of int | N of int

val equal_symbol : symbol -> symbol -> bool
val compare_symbol : symbol -> symbol -> int

type assoc = Left | Right | Nonassoc

(** How a nonterminal was declared. *)
type seq_kind =
  | Not_seq  (** ordinary nonterminal *)
  | Seq      (** sequence nonterminal: its productions form a
                 left-recursive spine that represents an associative list *)

(** Role of a production within a sequence desugaring. *)
type prod_role =
  | Plain
  | Seq_empty  (** [L -> ε] *)
  | Seq_one    (** [L -> elem] *)
  | Seq_cons   (** [L -> L elem] or [L -> L sep elem] *)

type production = {
  p_id : int;
  lhs : int;  (** nonterminal index *)
  rhs : symbol array;
  role : prod_role;
  prec : (int * assoc) option;
      (** effective precedence: explicit [%prec] or rightmost terminal's *)
}

type t

(** {1 Sizes and names} *)

val eof : int
(** Index of the implicit end-of-input terminal (always [0]). *)

val num_terminals : t -> int
val num_nonterminals : t -> int
val num_productions : t -> int
val terminal_name : t -> int -> string
val nonterminal_name : t -> int -> string
val symbol_name : t -> symbol -> string

(** [find_terminal g name] and [find_nonterminal g name] look indices up by
    name.  @raise Not_found if absent. *)
val find_terminal : t -> string -> int

val find_nonterminal : t -> string -> int

(** {1 Structure} *)

val production : t -> int -> production
val productions : t -> production array
val productions_of : t -> int -> int array
(** Production ids whose left-hand side is the given nonterminal. *)

val iter_productions : t -> (production -> unit) -> unit

(** [fold_productions g f acc] folds [f] over the productions in id order. *)
val fold_productions : t -> ('a -> production -> 'a) -> 'a -> 'a

(** [rhs_mentions g p sym] — does production [p]'s right-hand side contain
    [sym]? *)
val rhs_mentions : t -> int -> symbol -> bool

val operator_terminal : t -> int -> int option
(** The terminal at the second right-hand position of production [p]
    ([A -> B op …]): the {e operator} of the interpretation the
    production builds.  Exactly mirrors the extraction the dynamic
    operator-priority filter performs on dag nodes, so table-compilation
    analyses can predict the filter's ranking statically.  [None] when
    the right-hand side is shorter than two symbols or the second symbol
    is a nonterminal. *)

val start : t -> int
(** The user-declared start nonterminal. *)

val seq_kind : t -> int -> seq_kind
val term_prec : t -> int -> (int * assoc) option

val pp_symbol : t -> Format.formatter -> symbol -> unit
val pp_production : t -> Format.formatter -> int -> unit
val pp : Format.formatter -> t -> unit

(** {1 Construction (used by {!Builder})} *)

val make :
  terminal_names:string array ->
  nonterminal_names:string array ->
  productions:production array ->
  seq_kinds:seq_kind array ->
  term_precs:(int * assoc) option array ->
  start:int ->
  t
