type symbol = T of int | N of int

let equal_symbol a b =
  match a, b with
  | T x, T y | N x, N y -> x = y
  | T _, N _ | N _, T _ -> false

let compare_symbol a b =
  match a, b with
  | T x, T y | N x, N y -> compare x y
  | T _, N _ -> -1
  | N _, T _ -> 1

type assoc = Left | Right | Nonassoc
type seq_kind = Not_seq | Seq
type prod_role = Plain | Seq_empty | Seq_one | Seq_cons

type production = {
  p_id : int;
  lhs : int;
  rhs : symbol array;
  role : prod_role;
  prec : (int * assoc) option;
}

type t = {
  terminal_names : string array;
  nonterminal_names : string array;
  productions : production array;
  by_lhs : int array array;
  seq_kinds : seq_kind array;
  term_precs : (int * assoc) option array;
  start : int;
  term_index : (string, int) Hashtbl.t;
  nonterm_index : (string, int) Hashtbl.t;
}

let eof = 0
let num_terminals g = Array.length g.terminal_names
let num_nonterminals g = Array.length g.nonterminal_names
let num_productions g = Array.length g.productions
let terminal_name g i = g.terminal_names.(i)
let nonterminal_name g i = g.nonterminal_names.(i)

let symbol_name g = function
  | T i -> terminal_name g i
  | N i -> nonterminal_name g i

let find_terminal g name = Hashtbl.find g.term_index name
let find_nonterminal g name = Hashtbl.find g.nonterm_index name
let production g i = g.productions.(i)
let productions g = g.productions
let productions_of g nt = g.by_lhs.(nt)
let iter_productions g f = Array.iter f g.productions
let fold_productions g f acc = Array.fold_left f acc g.productions

let rhs_mentions g p sym =
  Array.exists (equal_symbol sym) g.productions.(p).rhs

let operator_terminal g p =
  (* The terminal at the second right-hand position of an infix-shaped
     production [A -> B op ...]: the operator in the interpretation the
     production builds.  Mirrors the dag-side extraction performed by the
     operator-priority disambiguation filter, so static analyses can
     predict the filter's ranking from the production alone. *)
  let rhs = g.productions.(p).rhs in
  if Array.length rhs >= 2 then
    match rhs.(1) with T t -> Some t | N _ -> None
  else None

let start g = g.start
let seq_kind g nt = g.seq_kinds.(nt)
let term_prec g t = g.term_precs.(t)

let pp_symbol g ppf s = Format.pp_print_string ppf (symbol_name g s)

let pp_production g ppf i =
  let p = g.productions.(i) in
  Format.fprintf ppf "%s ->" (nonterminal_name g p.lhs);
  if Array.length p.rhs = 0 then Format.pp_print_string ppf " ε"
  else
    Array.iter (fun s -> Format.fprintf ppf " %s" (symbol_name g s)) p.rhs

let pp ppf g =
  Format.fprintf ppf "start: %s@." (nonterminal_name g g.start);
  Array.iteri (fun i _ -> Format.fprintf ppf "%3d: %a@." i (pp_production g) i)
    g.productions

let index_names names =
  let h = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace h n i) names;
  h

let make ~terminal_names ~nonterminal_names ~productions ~seq_kinds
    ~term_precs ~start =
  let nn = Array.length nonterminal_names in
  if start < 0 || start >= nn then invalid_arg "Cfg.make: bad start";
  if Array.length seq_kinds <> nn then
    invalid_arg "Cfg.make: seq_kinds length mismatch";
  if Array.length term_precs <> Array.length terminal_names then
    invalid_arg "Cfg.make: term_precs length mismatch";
  Array.iteri
    (fun i p ->
      if p.p_id <> i then invalid_arg "Cfg.make: production ids must be dense";
      if p.lhs < 0 || p.lhs >= nn then invalid_arg "Cfg.make: bad lhs";
      Array.iter
        (function
          | T t ->
              if t < 0 || t >= Array.length terminal_names then
                invalid_arg "Cfg.make: bad terminal in rhs"
          | N n ->
              if n < 0 || n >= nn then
                invalid_arg "Cfg.make: bad nonterminal in rhs")
        p.rhs)
    productions;
  let by_lhs = Array.make nn [] in
  Array.iter (fun p -> by_lhs.(p.lhs) <- p.p_id :: by_lhs.(p.lhs)) productions;
  let by_lhs = Array.map (fun l -> Array.of_list (List.rev l)) by_lhs in
  {
    terminal_names;
    nonterminal_names;
    productions;
    by_lhs;
    seq_kinds;
    term_precs;
    start;
    term_index = index_names terminal_names;
    nonterm_index = index_names nonterminal_names;
  }
