(** Sentence generation from a grammar: shortest terminal yields, bounded
    sentence enumeration, and minimal surrounding contexts.

    This is the single home for yield expansion — both the lint
    shortest-example search and the ambiguity witness generator build on
    it, so the two can never drift apart.  Everything here is
    deterministic: fixpoints relax in production-id order and the
    enumeration queue is FIFO, so repeated runs produce identical output
    (golden tests rely on this). *)

(** [shortest_yields g] precomputes the shortest terminal yield of every
    symbol and returns a lookup: [Some terms] is a minimal-length string
    the symbol derives, [None] means the symbol is unproductive.
    Terminals yield themselves. *)
val shortest_yields : Cfg.t -> Cfg.symbol -> int list option

(** [min_yield_len g sym] — length of the shortest terminal yield of
    [sym], or [None] when unproductive.  Shares the fixpoint of
    {!shortest_yields}. *)
val min_yield_len : Cfg.t -> Cfg.symbol -> int option

(** [enumerate g ~from ~max_len] — every distinct terminal sentence of
    length [<= max_len] derivable from nonterminal [from], by bounded
    leftmost expansion of sentential forms with min-yield pruning.

    The search is capped: at most [max_work] sentential-form expansions
    (default 200_000) and at most [max_count] sentences kept (default
    600, the shortest in shortlex order).  Hitting a cap silently
    truncates the language sample — callers after exhaustiveness must
    check lengths themselves.  Output is sorted shortest-first, then
    lexicographically by terminal index. *)
val enumerate :
  ?max_count:int -> ?max_work:int -> Cfg.t -> from:int -> max_len:int ->
  int list list

(** A sentential context for a nonterminal occurrence: a sentence
    [pre ^ u ^ post] is derivable from the start symbol whenever the
    nonterminal derives [u]. *)
type context = { pre : int list; post : int list }

(** [occurrence_contexts g nt] — one minimal context per grammar
    occurrence of [nt] (each position [A -> alpha . nt beta] combines the
    shortest yields of [alpha]/[beta] with a minimal context of [A]),
    deduplicated and sorted by total length.  Empty when [nt] is
    unreachable or an occurrence's siblings are unproductive.  At most
    [max_count] contexts are returned (default 8). *)
val occurrence_contexts : ?max_count:int -> Cfg.t -> int -> context list
