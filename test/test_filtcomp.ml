(* Tests for static filter compilation (Lrtab.Compile) and its
   whole-language wrapper with the soundness certifier
   (Analyze.Filtcomp): golden verdict tables for every bundled
   language, table-rewrite invariants, certificate round-trips,
   compiled-vs-dynamic dag equality on the Appendix-B goldens, and the
   zero-residual guarantee observed through the metrics layer. *)

module Cfg = Grammar.Cfg
module Table = Lrtab.Table
module Compile = Lrtab.Compile
module Filtcomp = Analyze.Filtcomp
module Language = Languages.Language
module Session = Iglr.Session
module Syn_filter = Iglr.Syn_filter
module Json = Metrics.Json

let languages =
  [
    ("calc", Languages.Calc.language);
    ("tiny", Languages.Tiny.language);
    ("c", Languages.C_subset.language);
    ("cpp", Languages.Cpp_subset.language);
    ("lr2", Languages.Lr2.language);
    ("modula2", Languages.Modula2.language);
    ("lisp", Languages.Lisp.language);
    ("java", Languages.Java_subset.language);
  ]

(* Mirror of the iglrc filtcomp configuration. *)
let config_of (name, lang) =
  let spec = lang.Language.ambig in
  let rules = spec.Language.syn_filters in
  let specs = List.map Language.spec_of_rule rules in
  let ambig =
    Analyze.Ambig.config ~syn_filters:rules ?sem_policy:spec.Language.sem_policy
      ~sem_preamble:spec.Language.sem_preamble ~lexemes:spec.Language.lexemes
      (Language.table lang)
  in
  Filtcomp.config ~language:name ~rules ~specs ~expect:spec.Language.filter_expect
    ~max_residual:spec.Language.max_residual ambig

(* ------------------------------------------------------------------ *)
(* Golden classification tables.                                       *)

(* Every bundled language must compile to an EMPTY residual set: the
   clike operator-priority rule folds into the table (7 decisions), and
   no other language declares dynamic filters.  A grammar change that
   pushes a rule back to the dynamic path shows up here (and in the
   committed certificates). *)
let golden =
  (* language, (rule-name, verdict) list, decision count, surviving *)
  [
    ("calc", [], 0, 0);
    ("tiny", [], 0, 0);
    ("c", [ ("production-priority", "compiled") ], 7, 2);
    ("cpp", [ ("production-priority", "compiled") ], 7, 2);
    ("lr2", [], 0, 1);
    ("modula2", [], 0, 0);
    ("lisp", [], 0, 0);
    ("java", [], 0, 0);
  ]

let test_golden_verdicts () =
  List.iter
    (fun (name, lang) ->
      let verdicts, decisions, surviving =
        let _, v, d, s = List.find (fun (n, _, _, _) -> n = name) golden in
        (v, d, s)
      in
      let report = Filtcomp.analyze (config_of (name, lang)) in
      let r = report.Filtcomp.r_result in
      Alcotest.(check (list (pair string string)))
        (name ^ " verdicts") verdicts report.Filtcomp.r_verdicts;
      Alcotest.(check int)
        (name ^ " decisions") decisions
        (List.length r.Compile.decisions);
      Alcotest.(check int)
        (name ^ " surviving conflicts") surviving
        (List.length r.Compile.surviving);
      Alcotest.(check (list int)) (name ^ " residual") [] r.Compile.residual;
      Alcotest.(check (list string))
        (name ^ " violations") [] report.Filtcomp.r_violations;
      Alcotest.(check int)
        (name ^ " residual filters") 0
        (List.length (Language.residual_filters lang)))
    languages

(* ------------------------------------------------------------------ *)
(* Table-rewrite invariants.                                           *)

(* Each compiled decision's (state, terminal) entry must become the
   singleton chosen action; every other entry must be untouched; the
   conflict list must shrink by exactly the decided sites. *)
let test_table_rewrite () =
  let lang = Languages.C_subset.language in
  let dyn = Language.table lang in
  let result = (Language.compiled lang).Language.c_result in
  let comp = result.Compile.table in
  Alcotest.(check int)
    "conflicts removed"
    (List.length (Table.conflicts dyn) - List.length result.Compile.decisions)
    (List.length (Table.conflicts comp));
  let decided = Hashtbl.create 16 in
  List.iter
    (fun (d : Compile.decision) ->
      Hashtbl.replace decided (d.Compile.d_state, d.Compile.d_term) ();
      Alcotest.(check bool)
        (Printf.sprintf "state %d singleton" d.Compile.d_state)
        true
        (Table.actions comp ~state:d.Compile.d_state ~term:d.Compile.d_term
        = [ d.Compile.d_action ]))
    result.Compile.decisions;
  for state = 0 to Table.num_states dyn - 1 do
    for term = 0 to Cfg.num_terminals (Table.grammar dyn) - 1 do
      if not (Hashtbl.mem decided (state, term)) then
        if
          Table.actions dyn ~state ~term <> Table.actions comp ~state ~term
        then
          Alcotest.failf "undecided entry (%d, %d) changed" state term
    done
  done

(* [Table.with_overrides] must refuse an action that is not already a
   member of the conflicted entry — compilation may only narrow. *)
let test_with_overrides_narrowing () =
  let lang = Languages.C_subset.language in
  let dyn = Language.table lang in
  match Table.conflicts dyn with
  | [] -> Alcotest.fail "expected conflicts in the clike table"
  | c :: _ ->
      let state = c.Table.c_state and term = c.Table.c_term in
      let foreign = Table.Shift 100_000 in
      Alcotest.check_raises "foreign action rejected"
        (Invalid_argument
           (Printf.sprintf
              "Table.with_overrides: state %d on %s: chosen action absent \
               from entry"
              state
              (Cfg.terminal_name (Table.grammar dyn) term)))
        (fun () -> ignore (Table.with_overrides dyn [ ((state, term), foreign) ]))

(* ------------------------------------------------------------------ *)
(* Certificates.                                                       *)

(* The certificate JSON is deterministic (analyze twice, byte-equal) and
   survives a parse round-trip — the properties `iglrc filtcomp --check`
   relies on for structural comparison against the committed files. *)
let test_certificate_roundtrip () =
  List.iter
    (fun (name, lang) ->
      let j1 =
        Filtcomp.to_json ~language:name
          (Filtcomp.analyze (config_of (name, lang)))
      in
      let j2 =
        Filtcomp.to_json ~language:name
          (Filtcomp.analyze (config_of (name, lang)))
      in
      Alcotest.(check bool) (name ^ " deterministic") true (j1 = j2);
      Alcotest.(check bool)
        (name ^ " round-trips") true
        (Json.of_string (Json.to_string j1) = j1))
    languages

(* Full certification for the language with the richest filter story:
   clike must pass all four checks (Earley oracle, differential corpus,
   mutation fuzz, budget comparison).  The remaining languages are
   certified by @filtcomp-smoke against the committed certificates. *)
let test_certify_clike () =
  let report = Filtcomp.certify (config_of ("c", Languages.C_subset.language)) in
  Alcotest.(check (list string)) "no violations" [] report.Filtcomp.r_violations;
  List.iter
    (fun (c : Filtcomp.check) ->
      if not c.Filtcomp.c_pass then
        Alcotest.failf "check %s failed: %s" c.Filtcomp.c_name
          c.Filtcomp.c_detail)
    report.Filtcomp.r_checks;
  Alcotest.(check bool) "four checks ran" true
    (List.map (fun c -> c.Filtcomp.c_name) report.Filtcomp.r_checks
    = [ "oracle"; "corpus"; "fuzz"; "budget" ]);
  Alcotest.(check bool) "certified" true (Filtcomp.certified report)

(* ------------------------------------------------------------------ *)
(* Compiled-vs-dynamic equality on the Appendix-B golden.              *)

let appendix_b =
  "typedef int a;\nint foo () { int i; a (b); c (d); i = 1; }\n"

let sexp_of lang table filters text =
  let s, outcome =
    Session.create ~table ~syn_filters:filters ~lexer:(Language.lexer lang)
      text
  in
  match outcome with
  | Session.Parsed _ ->
      Parsedag.Pp.to_sexp lang.Language.grammar (Session.root s)
  | Session.Recovered _ -> Alcotest.failf "fixture rejected: %S" text

let test_appendix_b_differential () =
  List.iter
    (fun (name, lang) ->
      let dyn =
        sexp_of lang (Language.table lang)
          lang.Language.ambig.Language.syn_filters appendix_b
      in
      let comp =
        sexp_of lang
          (Language.compiled_table lang)
          (Language.residual_filters lang)
          appendix_b
      in
      Alcotest.(check string) (name ^ " appendix B dag") dyn comp;
      (* A text that reaches the compiled sites (call-vs-binop on '('):
         the dynamic rule must actually fire on it — otherwise the
         differential is vacuous — and the compiled table must still
         agree. *)
      let firing = "int foo () { int i; i = b (1) + c (2) * d (3); }\n" in
      let report =
        Syn_filter.apply lang.Language.grammar
          lang.Language.ambig.Language.syn_filters
          (let s, _ =
             Session.create ~table:(Language.table lang)
               ~lexer:(Language.lexer lang) firing
           in
           Session.root s)
      in
      Alcotest.(check bool)
        (name ^ " firing text is filter-relevant") true
        (report.Syn_filter.filtered > 0);
      let dyn =
        sexp_of lang (Language.table lang)
          lang.Language.ambig.Language.syn_filters firing
      in
      let comp =
        sexp_of lang
          (Language.compiled_table lang)
          (Language.residual_filters lang)
          firing
      in
      Alcotest.(check string) (name ^ " firing-text dag") dyn comp)
    [
      ("c", Languages.C_subset.language); ("cpp", Languages.Cpp_subset.language);
    ]

(* ------------------------------------------------------------------ *)
(* Zero-residual guarantee, observed through the metrics layer.        *)

(* With an empty residual set, a session on the compiled table must
   never reach Syn_filter.apply: every committed parse takes the skip
   side of the single residual-filter branch. *)
let test_zero_apply_calls () =
  List.iter
    (fun (name, lang, text) ->
      Alcotest.(check int)
        (name ^ " empty residual set") 0
        (List.length (Language.residual_filters lang));
      let before = Metrics.snapshot () in
      let s, outcome =
        Session.create
          ~table:(Language.compiled_table lang)
          ~syn_filters:(Language.residual_filters lang)
          ~lexer:(Language.lexer lang) text
      in
      (match outcome with
      | Session.Parsed _ -> ()
      | Session.Recovered _ -> Alcotest.failf "%s fixture rejected" name);
      Session.edit s ~pos:0 ~del:0 ~insert:" ";
      (match Session.reparse s with
      | Session.Parsed _ -> ()
      | Session.Recovered _ -> Alcotest.failf "%s reparse rejected" name);
      let d = Metrics.diff (Metrics.snapshot ()) before in
      Alcotest.(check int)
        (name ^ " zero Syn_filter.apply calls") 0
        (Metrics.count d "filter.apply_calls");
      Alcotest.(check int)
        (name ^ " filter branch never taken") 0
        (Metrics.count d "session.filter_pass");
      Alcotest.(check bool)
        (name ^ " skip branch counted") true
        (Metrics.count d "session.filter_skip" > 0))
    [
      ("calc", Languages.Calc.language, "v = (1 + 2) * x / 3;");
      ("lr2", Languages.Lr2.language, "x z c");
      ("c", Languages.C_subset.language, appendix_b);
    ]

(* ------------------------------------------------------------------ *)
(* Dead-filter lint.                                                   *)

(* A rule that can never resolve anything — here a prefer-production
   naming a nonterminal no conflicted alternative starts with, on a
   table whose only conflicts the rule declines deterministically —
   must surface as a Dead_filter warning with the rule's name. *)
let test_dead_filter_lint () =
  let lang = Languages.C_subset.language in
  let table = Language.table lang in
  let rules = [ Syn_filter.Prefer_production "declarator" ] in
  let specs = List.map Language.spec_of_rule rules in
  match Filtcomp.lint_rules table ~rules ~specs with
  | [ (Analyze.Lint.Dead_filter { rule; _ } as diag) ] ->
      Alcotest.(check string) "rule name" "prefer-production:declarator" rule;
      Alcotest.(check bool)
        "warning severity" true
        (Analyze.Lint.severity diag = Analyze.Lint.Warning)
  | ds -> Alcotest.failf "expected one Dead_filter, got %d" (List.length ds)

(* A live rule must NOT be flagged. *)
let test_live_filter_not_flagged () =
  let lang = Languages.C_subset.language in
  let table = Language.table lang in
  let rules = lang.Language.ambig.Language.syn_filters in
  let specs = List.map Language.spec_of_rule rules in
  Alcotest.(check int)
    "no dead-filter diagnostics" 0
    (List.length (Filtcomp.lint_rules table ~rules ~specs))

(* ------------------------------------------------------------------ *)
(* Opaque rules stay residual and trip the budget.                     *)

let test_opaque_residual () =
  let lang = Languages.C_subset.language in
  let spec = lang.Language.ambig in
  let rules = [ Syn_filter.Fewest_nodes ] in
  let specs = List.map Language.spec_of_rule rules in
  let ambig =
    Analyze.Ambig.config ~syn_filters:rules ?sem_policy:spec.Language.sem_policy
      ~sem_preamble:spec.Language.sem_preamble ~lexemes:spec.Language.lexemes
      (Language.table lang)
  in
  let strict =
    Filtcomp.analyze
      (Filtcomp.config ~language:"c" ~rules ~specs ~max_residual:0 ambig)
  in
  Alcotest.(check (list (pair string string)))
    "opaque rule stays residual"
    [ ("fewest-nodes", "residual") ]
    strict.Filtcomp.r_verdicts;
  Alcotest.(check bool)
    "budget violation reported" true
    (strict.Filtcomp.r_violations <> []);
  let relaxed =
    Filtcomp.analyze
      (Filtcomp.config ~language:"c" ~rules ~specs ~max_residual:1 ambig)
  in
  Alcotest.(check (list string))
    "budget of one admits it" [] relaxed.Filtcomp.r_violations

let suite =
  [
    Alcotest.test_case "golden verdict tables (all languages)" `Quick
      test_golden_verdicts;
    Alcotest.test_case "table rewrite narrows decided entries only" `Quick
      test_table_rewrite;
    Alcotest.test_case "with_overrides rejects foreign actions" `Quick
      test_with_overrides_narrowing;
    Alcotest.test_case "certificates are deterministic and round-trip" `Quick
      test_certificate_roundtrip;
    Alcotest.test_case "clike certifies (oracle/corpus/fuzz/budget)" `Slow
      test_certify_clike;
    Alcotest.test_case "appendix B: compiled dag = dynamic dag" `Quick
      test_appendix_b_differential;
    Alcotest.test_case "compiled pipeline makes zero apply calls" `Quick
      test_zero_apply_calls;
    Alcotest.test_case "dead filter lints with a warning" `Quick
      test_dead_filter_lint;
    Alcotest.test_case "live filter is not flagged dead" `Quick
      test_live_filter_not_flagged;
    Alcotest.test_case "opaque rules stay residual under the budget" `Quick
      test_opaque_residual;
  ]
