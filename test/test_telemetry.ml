(* Domain-safety of the sharded telemetry substrate: N domains
   hammering one set of metric handles and one trace sink must lose
   nothing — the merged snapshot is the arithmetic sum of the per-domain
   activity, per-domain local diffs add up to the merged diff, the trace
   rings drop nothing below capacity and the merged stream stays
   well-formed. *)

let c = Metrics.counter "tel.counter"
let t = Metrics.timer "tel.timer"
let p = Metrics.peak "tel.peak"
let h = Metrics.histogram "tel.hist" ~bounds:[| 1.0; 10.0 |]

let domains = 4

(* Start [domains] workers simultaneously (a gate, so slot assignment is
   genuinely concurrent) and wait for all results. *)
let run_domains f =
  let gate = Atomic.make 0 in
  List.init domains (fun i ->
      Domain.spawn (fun () ->
          Atomic.incr gate;
          while Atomic.get gate < domains do
            Domain.cpu_relax ()
          done;
          f i))
  |> List.map Domain.join

let merged_equals_sum () =
  let iters = 10_000 in
  let before = Metrics.snapshot () in
  ignore
    (run_domains (fun i ->
         for k = 1 to iters do
           Metrics.incr c;
           Metrics.add c 1;
           Metrics.stop t (Metrics.start ());
           Metrics.record_peak p ((i * iters) + k);
           Metrics.observe h (float_of_int (k mod 15))
         done));
  let d = Metrics.diff (Metrics.snapshot ()) before in
  Alcotest.(check int)
    "counter sums across domains"
    (2 * domains * iters)
    (Metrics.count d "tel.counter");
  Alcotest.(check int)
    "timer events sum across domains" (domains * iters)
    (Metrics.span_events d "tel.timer");
  Alcotest.(check int)
    "peak takes the maximum" (domains * iters)
    (Metrics.count d "tel.peak");
  match List.assoc_opt "tel.hist" d with
  | Some (Metrics.Hist { counts; _ }) ->
      Alcotest.(check int)
        "histogram observations sum across domains" (domains * iters)
        (Array.fold_left ( + ) 0 counts)
  | _ -> Alcotest.fail "histogram missing from merged snapshot"

let local_diffs_sum_to_merged () =
  let before = Metrics.snapshot () in
  let locals =
    run_domains (fun i ->
        let b = Metrics.local_snapshot () in
        for _ = 1 to (i + 1) * 1000 do
          Metrics.incr c
        done;
        Metrics.diff (Metrics.local_snapshot ()) b)
  in
  let d = Metrics.diff (Metrics.snapshot ()) before in
  let total =
    List.fold_left (fun acc l -> acc + Metrics.count l "tel.counter") 0 locals
  in
  (* Each domain observed exactly its own activity... *)
  List.iteri
    (fun i l ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d local diff is exact" i)
        ((i + 1) * 1000)
        (Metrics.count l "tel.counter"))
    locals;
  (* ...and nothing was double-counted or lost in the merge. *)
  Alcotest.(check int) "local diffs sum to the merged diff" total
    (Metrics.count d "tel.counter")

let trace_stress () =
  let spans = 200 in
  Trace.set_capacity 4096;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
  @@ fun () ->
  Trace.clear ();
  ignore
    (run_domains (fun i ->
         Trace.with_request (string_of_int i) (fun () ->
             for k = 1 to spans do
               Trace.span Trace.Session "tel.span" (fun () ->
                   Trace.instant Trace.Glr "tel.tick" [ ("k", Trace.Int k) ])
             done)));
  Alcotest.(check int) "no events dropped below capacity" 0 (Trace.dropped ());
  let evs = Trace.events () in
  Alcotest.(check int)
    "every emission retained"
    (domains * spans * 3)
    (List.length evs);
  (match Trace.Check.well_formed evs with
  | [] -> ()
  | faults ->
      Alcotest.fail
        ("merged stream ill-formed: " ^ String.concat "; " faults));
  let dids =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.Trace.did) evs)
  in
  Alcotest.(check int) "one lane per domain" domains (List.length dids);
  (* Every event carries its request's correlation id, and the ids
     partition the stream by recording domain. *)
  List.iter
    (fun (e : Trace.event) ->
      match Trace.str_arg "rid" e with
      | Some _ -> ()
      | None -> Alcotest.fail "event without rid inside with_request")
    evs;
  let rids =
    List.sort_uniq compare
      (List.filter_map (fun e -> Trace.str_arg "rid" e) evs)
  in
  Alcotest.(check int) "one rid per worker" domains (List.length rids)

let openmetrics_roundtrip () =
  Metrics.incr c;
  Metrics.observe h 5.0;
  Metrics.stop t (Metrics.start ());
  let text = Metrics.Openmetrics.render (Metrics.snapshot ()) in
  match Metrics.Openmetrics.parse text with
  | Error m -> Alcotest.fail ("self-render rejected: " ^ m)
  | Ok samples ->
      (match Metrics.Openmetrics.sample_value samples "iglr_tel_counter_total" with
      | Some v when v >= 1.0 -> ()
      | _ -> Alcotest.fail "counter sample missing from exposition");
      (match Metrics.Openmetrics.sample_value samples "iglr_tel_timer_events_total" with
      | Some v when v >= 1.0 -> ()
      | _ -> Alcotest.fail "timer sample missing from exposition");
      match Metrics.Openmetrics.sample_value samples "iglr_tel_hist_count" with
      | Some v when v >= 1.0 -> ()
      | _ -> Alcotest.fail "histogram count missing from exposition"

let openmetrics_rejects_garbage () =
  (match Metrics.Openmetrics.parse "iglr_x_total 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing # EOF accepted");
  (match Metrics.Openmetrics.parse "# TYPE iglr_x counter\niglr_x_total nan?\n# EOF\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric value accepted");
  match Metrics.Openmetrics.parse "# TYPE iglr_x counter\niglr_y_total 1\n# EOF\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sample outside its declared family accepted"

let suite =
  [
    Alcotest.test_case "merged snapshot equals per-domain sums" `Quick
      merged_equals_sum;
    Alcotest.test_case "local diffs are exact and sum to merged" `Quick
      local_diffs_sum_to_merged;
    Alcotest.test_case "trace rings under domain stress" `Quick trace_stress;
    Alcotest.test_case "openmetrics round-trip" `Quick openmetrics_roundtrip;
    Alcotest.test_case "openmetrics rejects garbage" `Quick
      openmetrics_rejects_garbage;
  ]
