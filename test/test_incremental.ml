(* Integration tests for incremental parsing: the central invariant is
   that an incremental reparse after edits produces a tree structurally
   identical to a from-scratch parse of the edited text. *)

module Node = Parsedag.Node
module Pp = Parsedag.Pp
module Glr = Iglr.Glr
module Session = Iglr.Session
module Document = Vdoc.Document
module Language = Languages.Language

let session lang text =
  let table = Language.table lang in
  let lexer = Language.lexer lang in
  (* The dag sanitizer runs after every successful parse — initial and
     incremental — so any test edit that silently corrupts the dag fails
     at the edit that introduced the damage. *)
  Session.create ~table ~lexer
    ~on_parse:(fun root -> Analyze.Check.assert_dag table root)
    text

let batch_sexp lang text =
  let s, outcome = session lang text in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.failf "batch parse failed for %S" text);
  Pp.to_sexp lang.Language.grammar (Session.root s)

let check_incremental_matches_batch lang s =
  match Session.reparse s with
  | Session.Recovered _ -> Alcotest.failf "incremental parse failed"
  | Session.Parsed stats ->
      let inc = Pp.to_sexp lang.Language.grammar (Session.root s) in
      let batch = batch_sexp lang (Session.text s) in
      Alcotest.(check string) "incremental = batch" batch inc;
      stats

let calc = Languages.Calc.language
let c = Languages.C_subset.language
let lr2 = Languages.Lr2.language

let test_calc_token_edit () =
  let s, outcome = session calc "a = 1 + 2 * x;\ny = a * 4;\n" in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "initial parse failed");
  Session.edit s ~pos:4 ~del:1 ~insert:"42";
  let stats = check_incremental_matches_batch calc s in
  Alcotest.(check bool) "subtrees were reused" true
    (stats.Glr.shifted_subtrees > 0)

let test_calc_structural_edit () =
  let s, _ = session calc "a = 1;\nb = 2;\nc = 3;\n" in
  (* Turn the middle statement into a nested expression statement. *)
  Session.edit s ~pos:7 ~del:6 ~insert:"(b + 9) * 2;";
  ignore (check_incremental_matches_batch calc s)

let test_calc_insert_statement () =
  let s, _ = session calc "a = 1;\nc = 3;\n" in
  Session.edit s ~pos:7 ~del:0 ~insert:"b = 2;\n";
  ignore (check_incremental_matches_batch calc s)

let test_calc_delete_statement () =
  let s, _ = session calc "a = 1;\nb = 2;\nc = 3;\n" in
  Session.edit s ~pos:7 ~del:7 ~insert:"";
  ignore (check_incremental_matches_batch calc s)

let test_self_cancelling_edit_reuses () =
  (* The §5 benchmark operation: change a token, parse, change it back,
     parse.  After the round trip the tree must match the original and
     most of the structure must have been reused rather than rebuilt. *)
  let text = "a = 1 + 2;\nb = a * 3;\nc = b / 4;\nd = c - 5;\n" in
  let s, _ = session calc text in
  let original = Pp.to_sexp calc.Language.grammar (Session.root s) in
  Session.edit s ~pos:4 ~del:1 ~insert:"7";
  ignore (check_incremental_matches_batch calc s);
  Session.edit s ~pos:4 ~del:1 ~insert:"1";
  let stats = check_incremental_matches_batch calc s in
  Alcotest.(check string) "round trip restores structure" original
    (Pp.to_sexp calc.Language.grammar (Session.root s));
  (* Locality: only the edited statement and the sequence spine above it
     are rebuilt; the bulk of the tree is shifted whole. *)
  let total = Node.count_nodes (Session.root s) in
  Alcotest.(check bool) "few nodes rebuilt" true
    (stats.Glr.nodes_created * 2 < total);
  Alcotest.(check bool) "subtrees shifted whole" true
    (stats.Glr.shifted_subtrees > 0)

let fig1_source = "int foo () { int i; int j; a (b); c (d); i = 1; j = 2; }"

let count_choices root =
  let c = ref 0 in
  Node.iter
    (fun n -> match n.Node.kind with Node.Choice _ -> incr c | _ -> ())
    root;
  !c

let test_c_fig1_ambiguity () =
  let s, outcome = session c fig1_source in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "figure 1 parse failed");
  Alcotest.(check int) "two ambiguous statements" 2
    (count_choices (Session.root s));
  (* Terminals are shared between interpretations (Figure 3): token count
     equals the number of lexed tokens. *)
  let expected_tokens =
    List.length (fst (Lexgen.Scanner.all (Language.lexer c) fig1_source))
  in
  Alcotest.(check int) "terminals shared" expected_tokens
    (Node.token_count (Session.root s))

let test_c_appendix_b_scenario () =
  (* Appendix B: delete the semicolon after "a (b)" and re-insert it.  The
     ambiguous region is rebuilt with both interpretations; everything
     else is reused. *)
  let s, _ = session c fig1_source in
  let semi_pos = String.index_from fig1_source 28 ';' in
  Session.edit s ~pos:semi_pos ~del:1 ~insert:"";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ ->
      (* "a (b) c (d);" may genuinely fail to parse; either outcome is
         acceptable here as long as re-insertion restores the dag. *)
      ());
  Session.edit s ~pos:semi_pos ~del:0 ~insert:";";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "reparse after re-insertion failed");
  Alcotest.(check int) "ambiguity reconstructed" 2
    (count_choices (Session.root s));
  let batch = batch_sexp c fig1_source in
  Alcotest.(check string) "round trip = batch" batch
    (Pp.to_sexp c.Language.grammar (Session.root s))

let test_c_edit_outside_ambiguity () =
  (* An edit outside the ambiguous regions must not disturb them: the
     choice nodes must be physically reused. *)
  let s, _ = session c fig1_source in
  let before =
    let acc = ref [] in
    Node.iter
      (fun n ->
        match n.Node.kind with Node.Choice _ -> acc := n :: !acc | _ -> ())
      (Session.root s);
    !acc
  in
  (* Change "j = 2" to "j = 9" near the end. *)
  let pos = String.rindex fig1_source '2' in
  Session.edit s ~pos ~del:1 ~insert:"9";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "reparse failed");
  let after =
    let acc = ref [] in
    Node.iter
      (fun n ->
        match n.Node.kind with Node.Choice _ -> acc := n :: !acc | _ -> ())
      (Session.root s);
    !acc
  in
  Alcotest.(check int) "still two ambiguities" 2 (List.length after);
  List.iter
    (fun (old : Node.t) ->
      Alcotest.(check bool) "choice node physically reused" true
        (List.memq old after))
    before

let test_c_edit_inside_ambiguity () =
  (* Editing inside an ambiguous region forces its atomic reconstruction;
     the result must match a batch parse. *)
  let s, _ = session c fig1_source in
  let pos = String.index fig1_source 'b' in
  Session.edit s ~pos ~del:1 ~insert:"zz";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "reparse failed");
  let batch = batch_sexp c (Session.text s) in
  Alcotest.(check string) "incremental = batch" batch
    (Pp.to_sexp c.Language.grammar (Session.root s))

let test_lr2_lookahead_change () =
  (* Figure 7: "x z c" parses via U; editing the last token to "e" flips
     the whole interpretation to V — dynamic lookahead tracking must
     force the non-deterministic region to be re-examined. *)
  let s, outcome = session lr2 "x z c" in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "initial parse failed");
  Alcotest.(check string) "U interpretation"
    "(root (A (B (U \"x\") \"z\") \"c\"))"
    (Pp.to_sexp lr2.Language.grammar (Session.root s));
  Session.edit s ~pos:4 ~del:1 ~insert:"e";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "reparse failed");
  Alcotest.(check string) "V interpretation"
    "(root (A (D (V \"x\") \"z\") \"e\"))"
    (Pp.to_sexp lr2.Language.grammar (Session.root s))

let test_recovery_and_repair () =
  let s, _ = session calc "a = 1;\nb = 2;\n" in
  let good = Pp.to_sexp calc.Language.grammar (Session.root s) in
  (* Break it: delete the first semicolon. *)
  Session.edit s ~pos:5 ~del:1 ~insert:"";
  (match Session.reparse s with
  | Session.Recovered { flagged; _ } ->
      Alcotest.(check bool) "something flagged" true (flagged >= 0);
      Alcotest.(check bool) "session has errors" true (Session.has_errors s)
  | Session.Parsed _ -> Alcotest.fail "expected recovery");
  (* Old structure is retained (history-based recovery). *)
  Alcotest.(check bool) "text reflects the edit" true
    (String.equal (Session.text s) "a = 1\nb = 2;\n");
  (* Repair. *)
  Session.edit s ~pos:5 ~del:0 ~insert:";";
  (match Session.reparse s with
  | Session.Parsed _ ->
      Alcotest.(check bool) "errors cleared" false (Session.has_errors s)
  | Session.Recovered _ -> Alcotest.fail "repair failed");
  Alcotest.(check string) "structure restored" good
    (Pp.to_sexp calc.Language.grammar (Session.root s))

let test_multi_edit_recovery () =
  (* Two pending edits, one of which breaks the syntax: recovery holds the
     structure; repairing the bad edit incorporates both. *)
  let s, _ = session calc "a = 1;\nb = 2;\n" in
  Session.edit s ~pos:4 ~del:1 ~insert:"42" (* good *);
  (* After the first edit the text is "a = 42;\nb = 2;\n"; break the "2"
     of the second statement (offset 12). *)
  Session.edit s ~pos:12 ~del:1 ~insert:"+";
  (match Session.reparse s with
  | Session.Recovered _ -> ()
  | Session.Parsed _ -> Alcotest.fail "expected recovery");
  (* Repair the bad edit; both changes must now be integrated. *)
  Session.edit s ~pos:12 ~del:1 ~insert:"9";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "repair failed");
  Alcotest.(check string) "both edits incorporated"
    (batch_sexp calc "a = 42;\nb = 9;\n")
    (Pp.to_sexp calc.Language.grammar (Session.root s))

(* Property: random edit scripts on calc programs keep incremental = batch. *)
let gen_program =
  QCheck.Gen.(
    let stmt =
      oneofl
        [
          "a = 1;\n"; "b = a + 2;\n"; "c = (a + b) * 3;\n"; "d;\n";
          "e = a * b + c * d;\n"; "f = 1 + 2 + 3 + 4;\n";
        ]
    in
    map (String.concat "") (list_size (int_range 1 8) stmt))

let gen_script = QCheck.Gen.(pair gen_program (int_bound 10000))

let prop_incremental_equals_batch =
  QCheck.Test.make ~count:150 ~name:"random edits: incremental = batch"
    (QCheck.make gen_script)
    (fun (program, seed) ->
      let s, outcome = session calc program in
      (match outcome with Session.Parsed _ -> () | _ -> QCheck.assume_fail ());
      let st = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to 4 do
        let len = String.length (Session.text s) in
        let pos = if len = 0 then 0 else Random.State.int st len in
        let del = min (Random.State.int st 3) (len - pos) in
        let ins =
          List.nth [ "x"; "1"; " + y"; ";"; "" ] (Random.State.int st 5)
        in
        Session.edit s ~pos ~del ~insert:ins;
        match Session.reparse s with
        | Session.Parsed _ ->
            let inc = Pp.to_sexp calc.Language.grammar (Session.root s) in
            let fresh, o2 = session calc (Session.text s) in
            (match o2 with
            | Session.Parsed _ ->
                if inc <> Pp.to_sexp calc.Language.grammar (Session.root fresh)
                then ok := false
            | Session.Recovered _ -> ok := false)
        | Session.Recovered _ ->
            (* A random edit may produce a syntax error; recovery keeps the
               document usable.  Nothing to compare. *)
            ()
      done;
      !ok)

let prop_c_incremental_equals_batch =
  QCheck.Test.make ~count:60 ~name:"C subset: random edits incremental = batch"
    QCheck.(int_bound 100000)
    (fun seed ->
      let s, _ = session c fig1_source in
      let st = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to 3 do
        let len = String.length (Session.text s) in
        let pos = if len = 0 then 0 else Random.State.int st len in
        let del = min (Random.State.int st 2) (len - pos) in
        let ins = List.nth [ "x"; "1"; ";"; " " ] (Random.State.int st 4) in
        Session.edit s ~pos ~del ~insert:ins;
        match Session.reparse s with
        | Session.Parsed _ ->
            let inc = Pp.to_sexp c.Language.grammar (Session.root s) in
            let fresh, o2 = session c (Session.text s) in
            (match o2 with
            | Session.Parsed _ ->
                if inc <> Pp.to_sexp c.Language.grammar (Session.root fresh)
                then ok := false
            | Session.Recovered _ -> ok := false)
        | Session.Recovered _ -> ()
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "calc: token edit" `Quick test_calc_token_edit;
    Alcotest.test_case "calc: structural edit" `Quick test_calc_structural_edit;
    Alcotest.test_case "calc: insert statement" `Quick test_calc_insert_statement;
    Alcotest.test_case "calc: delete statement" `Quick test_calc_delete_statement;
    Alcotest.test_case "calc: self-cancelling edit" `Quick
      test_self_cancelling_edit_reuses;
    Alcotest.test_case "C: figure 1 ambiguity" `Quick test_c_fig1_ambiguity;
    Alcotest.test_case "C: appendix B scenario" `Quick test_c_appendix_b_scenario;
    Alcotest.test_case "C: edit outside ambiguity reuses choices" `Quick
      test_c_edit_outside_ambiguity;
    Alcotest.test_case "C: edit inside ambiguity" `Quick
      test_c_edit_inside_ambiguity;
    Alcotest.test_case "lr2: lookahead change flips parse" `Quick
      test_lr2_lookahead_change;
    Alcotest.test_case "recovery and repair" `Quick test_recovery_and_repair;
    Alcotest.test_case "multi-edit recovery" `Quick test_multi_edit_recovery;
    QCheck_alcotest.to_alcotest prop_incremental_equals_batch;
    QCheck_alcotest.to_alcotest prop_c_incremental_equals_batch;
  ]
