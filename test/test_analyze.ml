(* Tests for the static-analysis subsystem (lib/analyze): grammar lint,
   conflict diagnostics, the parse-dag sanitizer, and the GSS validator. *)

module Cfg = Grammar.Cfg
module Builder = Grammar.Builder
module Table = Lrtab.Table
module Node = Parsedag.Node
module Lint = Analyze.Lint
module Check = Analyze.Check
module Session = Iglr.Session
module Language = Languages.Language

(* ------------------------------------------------------------------ *)
(* Grammar lint.                                                       *)

(* One grammar, one deliberate defect per lint rule:
     S -> a | U b | C        (U b is useless: U is unproductive)
     U -> U b                (unproductive)
     W -> a                  (unreachable)
     C -> D | a;  D -> C     (unit cycle C => D => C)
   plus a precedence level on 'zz', which occurs nowhere. *)
let broken_grammar () =
  let b = Builder.create () in
  Builder.declare_prec b Cfg.Left [ "zz" ];
  let s = Builder.nonterminal b "S" in
  let u = Builder.nonterminal b "U" in
  let w = Builder.nonterminal b "W" in
  let c = Builder.nonterminal b "C" in
  let d = Builder.nonterminal b "D" in
  let ta = Builder.terminal b "a" in
  let tb = Builder.terminal b "b" in
  Builder.prod b s [ ta ];
  Builder.prod b s [ u; tb ];
  Builder.prod b s [ c ];
  Builder.prod b u [ u; tb ];
  Builder.prod b w [ ta ];
  Builder.prod b c [ d ];
  Builder.prod b c [ ta ];
  Builder.prod b d [ c ];
  Builder.set_start b s;
  Builder.build b

let test_broken_grammar_diagnostics () =
  let g = broken_grammar () in
  let ds = Lint.grammar_diagnostics g in
  let name n = Cfg.nonterminal_name g n in
  let unreachable =
    List.filter_map (function Lint.Unreachable_nt n -> Some (name n) | _ -> None) ds
  in
  Alcotest.(check (list string)) "unreachable" [ "W" ] unreachable;
  let unproductive =
    List.filter_map (function Lint.Unproductive_nt n -> Some (name n) | _ -> None) ds
  in
  Alcotest.(check (list string)) "unproductive" [ "U" ] unproductive;
  let useless =
    List.filter_map (function Lint.Useless_production p -> Some p | _ -> None) ds
  in
  (match useless with
  | [ p ] ->
      Alcotest.(check string) "useless production lhs" "S"
        (name (Cfg.production g p).Cfg.lhs)
  | _ -> Alcotest.failf "expected exactly one useless production");
  let cycles =
    List.filter_map (function Lint.Derivation_cycle c -> Some c | _ -> None) ds
  in
  (match cycles with
  | [ cycle ] ->
      Alcotest.(check (list string)) "cycle members" [ "C"; "D" ]
        (List.sort compare (List.map name cycle))
  | _ -> Alcotest.failf "expected exactly one derivation cycle, got %d"
           (List.length cycles));
  let unused_prec =
    List.filter_map
      (function
        | Lint.Unused_prec { terminals; _ } ->
            Some (List.map (Cfg.terminal_name g) terminals)
        | _ -> None)
      ds
  in
  Alcotest.(check (list (list string))) "unused precedence" [ [ "zz" ] ]
    unused_prec;
  (* Each defect is an error except the precedence warning. *)
  Alcotest.(check int) "error count" 4 (List.length (Lint.errors ds));
  Alcotest.(check int) "warning count" 1 (List.length (Lint.warnings ds))

let test_clean_grammar_has_no_diagnostics () =
  let ds = Lint.grammar_diagnostics (Fixtures.expr_grammar ()) in
  Alcotest.(check int) "no diagnostics" 0 (List.length ds)

(* Every bundled language must be free of lint errors; conflicts are pinned
   below. *)
let test_bundled_languages_lint_clean () =
  List.iter
    (fun (name, lang) ->
      let table = Language.table lang in
      let ds = Lint.run table in
      Alcotest.(check int)
        (name ^ ": no lint errors")
        0
        (List.length (Lint.errors ds));
      Alcotest.(check int)
        (name ^ ": no lint warnings")
        0
        (List.length (Lint.warnings ds)))
    [
      ("calc", Languages.Calc.language);
      ("tiny", Languages.Tiny.language);
      ("c", Languages.C_subset.language);
      ("cpp", Languages.Cpp_subset.language);
      ("lr2", Languages.Lr2.language);
      ("modula2", Languages.Modula2.language);
      ("lisp", Languages.Lisp.language);
      ("java", Languages.Java_subset.language);
    ]

(* ------------------------------------------------------------------ *)
(* Conflict diagnostics.                                               *)

let test_c_conflicts_explained () =
  (* The documented, deliberate C-subset conflicts: the typedef
     reduce/reduce pair (type_spec -> id vs expr -> id) plus the
     call-vs-operator shift/reduce family on '('.  Every one must carry an
     example sentence reaching it and the items involved. *)
  let table = Language.table Languages.C_subset.language in
  let infos = Lint.conflict_diagnostics table in
  Alcotest.(check int) "nine retained conflicts" 9 (List.length infos);
  let lexical =
    List.filter (fun i -> i.Lint.klass = Lint.Lexical_ambiguity) infos
  in
  Alcotest.(check int) "two typedef-style conflicts" 2 (List.length lexical);
  let prec =
    List.filter (fun i -> i.Lint.klass = Lint.Prec_resolvable) infos
  in
  Alcotest.(check int) "seven prec-resolvable conflicts" 7 (List.length prec);
  List.iter
    (fun (i : Lint.conflict_info) ->
      (match i.Lint.example with
      | None -> Alcotest.failf "conflict without example sentence"
      | Some terms ->
          Alcotest.(check bool) "example nonempty" true (terms <> []);
          (* The example's last terminal is the conflicting lookahead. *)
          Alcotest.(check int) "example ends at the lookahead"
            i.Lint.conflict.Table.c_term
            (List.nth terms (List.length terms - 1)));
      Alcotest.(check bool) "items nonempty" true (i.Lint.items <> []))
    infos

let test_lr2_conflict_is_lexical () =
  (* Figure 7's U -> x / V -> x conflict: identical right-hand sides. *)
  let table = Language.table Languages.Lr2.language in
  match Lint.conflict_diagnostics table with
  | [ i ] ->
      Alcotest.(check bool) "lexical class" true
        (i.Lint.klass = Lint.Lexical_ambiguity);
      let g = Table.grammar table in
      (match i.Lint.example with
      | Some terms ->
          Alcotest.(check (list string)) "shortest sentence is x . z"
            [ "x"; "z" ]
            (List.map (Cfg.terminal_name g) terms)
      | None -> Alcotest.fail "expected an example")
  | infos -> Alcotest.failf "expected one conflict, got %d" (List.length infos)

let test_ambig_expr_conflicts_prec_resolvable () =
  let g = Fixtures.ambig_expr_grammar ~with_prec:false () in
  let table = Table.build g in
  let infos = Lint.conflict_diagnostics table in
  Alcotest.(check bool) "has conflicts" true (infos <> []);
  List.iter
    (fun (i : Lint.conflict_info) ->
      Alcotest.(check bool) "prec-resolvable" true
        (i.Lint.klass = Lint.Prec_resolvable))
    infos;
  (* And indeed, declaring precedence kills them all. *)
  let resolved = Table.build (Fixtures.ambig_expr_grammar ~with_prec:true ()) in
  Alcotest.(check int) "resolved by precedence" 0
    (List.length (Lint.conflict_diagnostics resolved))

let test_shortest_sentence_minimal () =
  (* For lr2 the conflict state is entered after exactly "x"; no shorter
     sentence can reach it. *)
  let table = Language.table Languages.Lr2.language in
  match Table.conflicts table with
  | [ c ] -> (
      match
        Lint.shortest_sentence table ~state:c.Table.c_state
          ~term:c.Table.c_term
      with
      | Some terms -> Alcotest.(check int) "length 2 (x + lookahead)" 2
                        (List.length terms)
      | None -> Alcotest.fail "expected a sentence")
  | _ -> Alcotest.fail "expected one conflict"

(* ------------------------------------------------------------------ *)
(* Dag sanitizer.                                                      *)

let c_lang = Languages.C_subset.language
let calc_lang = Languages.Calc.language
let fig1 = "int foo () { int i; int j; a (b); c (d); i = 1; j = 2; }"

let parsed lang text =
  let s, outcome =
    Session.create ~table:(Language.table lang) ~lexer:(Language.lexer lang)
      text
  in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.failf "parse failed for %S" text);
  s

let find_node pred root =
  let found = ref None in
  Node.iter (fun n -> if !found = None && pred n then found := Some n) root;
  match !found with Some n -> n | None -> Alcotest.fail "no such node"

let test_sanitizer_accepts_good_dags () =
  let s = parsed c_lang fig1 in
  Alcotest.(check int) "no violations" 0
    (List.length
       (Check.dag ~expect_text:(Session.text s) (Session.table s)
          (Session.root s)));
  let s2 = parsed calc_lang "a = 1 + 2 * x;\n" in
  Alcotest.(check int) "no violations (calc)" 0
    (List.length
       (Check.dag ~expect_text:(Session.text s2) (Session.table s2)
          (Session.root s2)))

let violation_rules vs = List.sort_uniq compare (List.map (fun v -> v.Check.rule) vs)

let test_sanitizer_rejects_bad_token_count () =
  let s = parsed calc_lang "a = 1;\nb = 2;\n" in
  let root = Session.root s in
  root.Node.tcount <- root.Node.tcount + 1;
  let vs = Check.dag (Session.table s) root in
  Alcotest.(check bool) "token-count flagged" true
    (List.mem "token-count" (violation_rules vs))

let test_sanitizer_rejects_broken_parent () =
  let s = parsed calc_lang "a = 1;\n" in
  let t = find_node Node.is_terminal (Session.root s) in
  t.Node.parent <- None;
  let vs = Check.dag (Session.table s) (Session.root s) in
  Alcotest.(check bool) "parent-link flagged" true
    (List.mem "parent-link" (violation_rules vs))

let test_sanitizer_rejects_bad_state () =
  let s = parsed calc_lang "a = 1;\n" in
  let t = find_node Node.is_terminal (Session.root s) in
  t.Node.state <- 100_000;
  let vs = Check.dag (Session.table s) (Session.root s) in
  Alcotest.(check bool) "state flagged" true
    (List.mem "state" (violation_rules vs))

let test_sanitizer_rejects_corrupt_production () =
  let s = parsed calc_lang "a = 1;\n" in
  let p =
    find_node
      (fun n ->
        match n.Node.kind with
        | Node.Prod _ -> Array.length n.Node.kids > 0
        | _ -> false)
      (Session.root s)
  in
  (* Swap in a different production id: the kids no longer match the rhs. *)
  (match p.Node.kind with
  | Node.Prod pid ->
      let g = Table.grammar (Session.table s) in
      let other =
        let rec pick i =
          let q = Cfg.production g i in
          if Array.length q.Cfg.rhs <> Array.length (Cfg.production g pid).Cfg.rhs
          then i
          else pick (i + 1)
        in
        pick 0
      in
      p.Node.kind <- Node.Prod other
  | _ -> assert false);
  let vs = Check.dag (Session.table s) (Session.root s) in
  Alcotest.(check bool) "production flagged" true
    (List.mem "production" (violation_rules vs))

let test_sanitizer_rejects_duplicate_choice () =
  let s = parsed c_lang fig1 in
  let choice =
    find_node
      (fun n -> match n.Node.kind with Node.Choice _ -> true | _ -> false)
      (Session.root s)
  in
  (* Both interpretations now physically identical: no real ambiguity. *)
  choice.Node.kids.(1) <- choice.Node.kids.(0);
  let vs = Check.dag (Session.table s) (Session.root s) in
  Alcotest.(check bool) "choice flagged" true
    (List.mem "choice" (violation_rules vs))

let test_sanitizer_rejects_text_drift () =
  let s = parsed calc_lang "a = 1;\n" in
  let vs =
    Check.dag ~expect_text:"b = 1;\n" (Session.table s) (Session.root s)
  in
  Alcotest.(check bool) "text-yield flagged" true
    (List.mem "text-yield" (violation_rules vs))

let test_assert_dag_raises () =
  let s = parsed calc_lang "a = 1;\n" in
  let root = Session.root s in
  root.Node.tcount <- root.Node.tcount + 1;
  match Check.assert_dag (Session.table s) root with
  | () -> Alcotest.fail "expected Corrupt"
  | exception Check.Corrupt (_ :: _) -> ()
  | exception Check.Corrupt [] -> Alcotest.fail "empty violation list"

(* The session hook: the sanitizer runs after every successful parse. *)
let test_session_on_parse_hook () =
  let table = Language.table calc_lang in
  let calls = ref 0 in
  let hook root =
    incr calls;
    Check.assert_dag table root
  in
  let s, outcome =
    Session.create ~table ~lexer:(Language.lexer calc_lang) ~on_parse:hook
      "a = 1;\n"
  in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "initial parse failed");
  Alcotest.(check int) "hook ran on the initial parse" 1 !calls;
  Session.edit s ~pos:4 ~del:1 ~insert:"42";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "reparse failed");
  Alcotest.(check int) "hook ran on the reparse" 2 !calls;
  (* A recovered parse that commits a tree (successful isolation) also
     invokes the hook — the sanitizer accepts error subtrees — so dag
     corruption is caught on damaged documents too. *)
  Session.edit s ~pos:6 ~del:1 ~insert:"";
  (match Session.reparse s with
  | Session.Recovered { isolated; _ } ->
      if isolated > 0 then
        Alcotest.(check int) "hook ran on isolation" 3 !calls
      else Alcotest.(check int) "hook skipped on flag-only recovery" 2 !calls
  | Session.Parsed _ -> Alcotest.fail "expected recovery")

(* ------------------------------------------------------------------ *)
(* GSS sanitizer.                                                      *)

let dummy_label () = Node.make_term ~term:1 ~text:"x" ~trivia:"" ~lex_la:0

let test_gss_validate_ok () =
  let bottom = Iglr.Gss.make_node ~state:0 [] in
  let top =
    Iglr.Gss.make_node ~state:1
      [ Iglr.Gss.make_link ~head:bottom ~label:(dummy_label ()) ]
  in
  Alcotest.(check int) "sane GSS" 0
    (List.length (Iglr.Gss.validate ~num_states:4 [ top ]))

let test_gss_validate_duplicate_states () =
  let bottom = Iglr.Gss.make_node ~state:0 [] in
  let link () = Iglr.Gss.make_link ~head:bottom ~label:(dummy_label ()) in
  let a = Iglr.Gss.make_node ~state:2 [ link () ] in
  let b = Iglr.Gss.make_node ~state:2 [ link () ] in
  Alcotest.(check bool) "duplicate state flagged" true
    (Iglr.Gss.validate ~num_states:4 [ a; b ] <> [])

let test_gss_validate_cycle () =
  let a = Iglr.Gss.make_node ~state:1 [] in
  let b =
    Iglr.Gss.make_node ~state:2
      [ Iglr.Gss.make_link ~head:a ~label:(dummy_label ()) ]
  in
  Iglr.Gss.add_link a (Iglr.Gss.make_link ~head:b ~label:(dummy_label ()));
  Alcotest.(check bool) "cycle flagged" true
    (Iglr.Gss.validate ~num_states:4 [ b ] <> [])

let test_gss_validate_bad_state () =
  let n = Iglr.Gss.make_node ~state:99 [] in
  Alcotest.(check bool) "state bound flagged" true
    (Iglr.Gss.validate ~num_states:4 [ n ] <> [])

let suite =
  [
    Alcotest.test_case "lint: broken grammar, one diagnostic per defect"
      `Quick test_broken_grammar_diagnostics;
    Alcotest.test_case "lint: clean grammar" `Quick
      test_clean_grammar_has_no_diagnostics;
    Alcotest.test_case "lint: bundled languages are lint-clean" `Quick
      test_bundled_languages_lint_clean;
    Alcotest.test_case "conflicts: C subset explained" `Quick
      test_c_conflicts_explained;
    Alcotest.test_case "conflicts: lr2 is lexical" `Quick
      test_lr2_conflict_is_lexical;
    Alcotest.test_case "conflicts: ambiguous expr is prec-resolvable" `Quick
      test_ambig_expr_conflicts_prec_resolvable;
    Alcotest.test_case "conflicts: shortest sentence is minimal" `Quick
      test_shortest_sentence_minimal;
    Alcotest.test_case "sanitizer: accepts good dags" `Quick
      test_sanitizer_accepts_good_dags;
    Alcotest.test_case "sanitizer: rejects bad token count" `Quick
      test_sanitizer_rejects_bad_token_count;
    Alcotest.test_case "sanitizer: rejects broken parent" `Quick
      test_sanitizer_rejects_broken_parent;
    Alcotest.test_case "sanitizer: rejects bad state" `Quick
      test_sanitizer_rejects_bad_state;
    Alcotest.test_case "sanitizer: rejects corrupt production" `Quick
      test_sanitizer_rejects_corrupt_production;
    Alcotest.test_case "sanitizer: rejects duplicate choice" `Quick
      test_sanitizer_rejects_duplicate_choice;
    Alcotest.test_case "sanitizer: rejects text drift" `Quick
      test_sanitizer_rejects_text_drift;
    Alcotest.test_case "sanitizer: assert_dag raises Corrupt" `Quick
      test_assert_dag_raises;
    Alcotest.test_case "session: on_parse hook wiring" `Quick
      test_session_on_parse_hook;
    Alcotest.test_case "gss: validate ok" `Quick test_gss_validate_ok;
    Alcotest.test_case "gss: duplicate states" `Quick
      test_gss_validate_duplicate_states;
    Alcotest.test_case "gss: cycle" `Quick test_gss_validate_cycle;
    Alcotest.test_case "gss: bad state" `Quick test_gss_validate_bad_state;
  ]
