let () =
  Alcotest.run "incremental_analysis"
    [
      ("bitset", Test_bitset.suite);
      ("grammar", Test_grammar.suite);
      ("lr", Test_lr.suite);
      ("lr1", Test_lr1.suite);
      ("lexer", Test_lexer.suite);
      ("minimize", Test_minimize.suite);
      ("dag", Test_dag.suite);
      ("glr-batch", Test_glr_batch.suite);
      ("glr-random", Test_glr_random.suite);
      ("document", Test_document.suite);
      ("relex", Test_relex.suite);
      ("incremental", Test_incremental.suite);
      ("syn-filter", Test_syn_filter.suite);
      ("baselines", Test_baselines.suite);
      ("sf-lr", Test_sf_lr.suite);
      ("earley", Test_earley.suite);
      ("semantics", Test_semantics.suite);
      ("attrs", Test_attrs.suite);
      ("workload", Test_workload.suite);
      ("langs", Test_langs.suite);
      ("sequence", Test_sequence.suite);
      ("trace", Test_trace.suite);
      ("trace-events", Test_trace_events.suite);
      ("analyze", Test_analyze.suite);
      ("ambig", Test_ambig.suite);
      ("filtcomp", Test_filtcomp.suite);
      ("metrics", Test_metrics.suite);
      ("telemetry", Test_telemetry.suite);
      ("recovery", Test_recovery.suite);
      ("edit-fuzz", Test_edit_fuzz.suite);
      ("server-protocol", Test_server_protocol.suite);
      ("server-concurrency", Test_server_concurrency.suite);
      ("server-correlation", Test_server_correlation.suite);
    ]
