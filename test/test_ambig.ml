(* Tests for the static ambiguity analyzer (Analyze.Ambig): soundness of
   witnesses against the Earley oracle, certification of unambiguous
   grammars, golden filter-coverage tables for the bundled languages, and
   budget enforcement. *)

module Cfg = Grammar.Cfg
module Table = Lrtab.Table
module Ambig = Analyze.Ambig
module Language = Languages.Language
module Yield = Grammar.Yield

let languages =
  [
    ("calc", Languages.Calc.language);
    ("c", Languages.C_subset.language);
    ("cpp", Languages.Cpp_subset.language);
    ("lr2", Languages.Lr2.language);
  ]

let analyze_lang lang =
  let spec = lang.Language.ambig in
  let config =
    Ambig.config ~syn_filters:spec.Language.syn_filters
      ?sem_policy:spec.Language.sem_policy
      ~sem_preamble:spec.Language.sem_preamble ~lexemes:spec.Language.lexemes
      (Language.table lang)
  in
  (Ambig.analyze config, spec)

let budget_of (spec : Language.ambig_spec) =
  {
    Ambig.b_max_unresolved = spec.Language.max_unresolved;
    b_expect = spec.Language.expect;
  }

(* ------------------------------------------------------------------ *)
(* Soundness: every reported witness is genuinely ambiguous.           *)

(* Re-verify each witness independently: the raw grammar must give the
   sentence at least two derivations under the Earley oracle.  (The
   analyzer itself only reports witnesses it confirmed, so this guards
   the confirmation logic against regressions.) *)
let test_witnesses_sound () =
  List.iter
    (fun (name, lang) ->
      let report, _ = analyze_lang lang in
      let g = lang.Language.grammar in
      List.iter
        (fun (k : Ambig.klass) ->
          match k.Ambig.k_witness with
          | None -> ()
          | Some w ->
              let terms =
                Array.of_list (List.map fst w.Ambig.w_tokens)
              in
              let count = Earley.count_derivations g terms in
              if count < 2 then
                Alcotest.failf "%s/%s: witness %S has %d derivation(s)" name
                  k.Ambig.k_name w.Ambig.w_text count)
        report.Ambig.r_classes)
    languages

(* A conflict-free table certifies the grammar unambiguous: nothing is
   flagged and no classes are reported. *)
let test_conflict_free_grammar_clean () =
  let g = Fixtures.expr_grammar () in
  let table = Table.build g in
  Alcotest.(check int) "no conflicts" 0 (List.length (Table.conflicts table));
  let report = Ambig.analyze (Ambig.config table) in
  Alcotest.(check (list int)) "nothing flagged" [] report.Ambig.r_flagged;
  Alcotest.(check int) "no classes" 0 (List.length report.Ambig.r_classes)

(* lr2 is LR(2) but unambiguous: the pair automaton must certify its
   reduce/reduce conflict unrealizable, leaving nothing flagged. *)
let test_lr2_certified_unambiguous () =
  let report, spec = analyze_lang Languages.Lr2.language in
  Alcotest.(check (list int)) "nothing flagged" [] report.Ambig.r_flagged;
  (match report.Ambig.r_classes with
  | [ k ] ->
      Alcotest.(check bool) "not realizable" false k.Ambig.k_realizable;
      Alcotest.(check string)
        "resolved statically" "resolved-static"
        (Ambig.resolution_name k.Ambig.k_resolution)
  | ks -> Alcotest.failf "expected one class, got %d" (List.length ks));
  Alcotest.(check (list string))
    "budget holds" []
    (Ambig.check_budget (budget_of spec) report)

(* ------------------------------------------------------------------ *)
(* Golden coverage tables.                                             *)

let coverage report =
  List.map
    (fun (k : Ambig.klass) ->
      (k.Ambig.k_name, Ambig.resolution_name k.Ambig.k_resolution))
    (List.sort
       (fun (a : Ambig.klass) b -> compare a.Ambig.k_name b.Ambig.k_name)
       report.Ambig.r_classes)

(* Calc's precedence declarations kill every ambiguity statically. *)
let test_calc_all_static () =
  let report, spec = analyze_lang Languages.Calc.language in
  Alcotest.(check int) "no unresolved" 0
    (List.length (Ambig.unresolved report));
  List.iter
    (fun (name, res) ->
      Alcotest.(check string) (name ^ " resolution") "resolved-static" res)
    (coverage report);
  Alcotest.(check (list string))
    "budget holds" []
    (Ambig.check_budget (budget_of spec) report)

(* The C/C++ coverage table the paper's pipeline implies: the typedef
   (lexical) class resolves semantically with a concrete witness, the
   retained call-vs-operator shift/reduce classes resolve via the
   dynamic operator-priority filter, everything else statically. *)
let check_clike name lang =
  let report, spec = analyze_lang lang in
  Alcotest.(check int)
    (name ^ " no unresolved")
    0
    (List.length (Ambig.unresolved report));
  let lexical =
    List.filter
      (fun (k : Ambig.klass) ->
        String.length k.Ambig.k_name >= 8
        && String.sub k.Ambig.k_name 0 8 = "lexical:")
      report.Ambig.r_classes
  in
  (match lexical with
  | [ k ] ->
      Alcotest.(check string)
        (name ^ " typedef class") "resolved-semantic"
        (Ambig.resolution_name k.Ambig.k_resolution);
      (match k.Ambig.k_witness with
      | Some w ->
          Alcotest.(check bool)
            (name ^ " witness nonempty")
            true
            (String.length w.Ambig.w_text > 0)
      | None -> Alcotest.failf "%s: typedef class has no witness" name)
  | ks -> Alcotest.failf "%s: expected one lexical class, got %d" name
            (List.length ks));
  List.iter
    (fun ((cname, res) : string * string) ->
      if String.length cname >= 3 && String.sub cname 0 3 = "sr:" then
        Alcotest.(check string) (name ^ " " ^ cname) "resolved-syntactic" res)
    (coverage report);
  Alcotest.(check (list string))
    (name ^ " budget holds")
    []
    (Ambig.check_budget (budget_of spec) report)

let test_c_coverage () = check_clike "c" Languages.C_subset.language
let test_cpp_coverage () = check_clike "cpp" Languages.Cpp_subset.language

(* ------------------------------------------------------------------ *)
(* Filter-coverage stages on the fixture grammar.                      *)

(* The bare ambiguous expression grammar retains unresolved classes; the
   same grammar with precedence declarations resolves all of them
   statically; a dynamic operator-priority filter resolves the
   mixed-operator class syntactically even without precedence. *)
let test_expr_grammar_stages () =
  let bare = Table.build (Fixtures.ambig_expr_grammar ~with_prec:false ()) in
  let bare_report = Ambig.analyze (Ambig.config bare) in
  Alcotest.(check bool)
    "bare grammar has unresolved classes" true
    (Ambig.unresolved bare_report <> []);
  let prec = Table.build (Fixtures.ambig_expr_grammar ~with_prec:true ()) in
  let prec_report = Ambig.analyze (Ambig.config prec) in
  Alcotest.(check int)
    "precedence resolves all" 0
    (List.length (Ambig.unresolved prec_report));
  let filtered =
    Ambig.analyze
      (Ambig.config
         ~syn_filters:
           [ Iglr.Syn_filter.Production_priority [ ("+", 60); ("*", 50) ] ]
         bare)
  in
  let mixed =
    List.filter
      (fun (k : Ambig.klass) -> List.length (List.sort_uniq compare k.Ambig.k_prods) >= 2)
      filtered.Ambig.r_classes
  in
  Alcotest.(check bool) "has mixed-operator classes" true (mixed <> []);
  List.iter
    (fun (k : Ambig.klass) ->
      Alcotest.(check string)
        (k.Ambig.k_name ^ " via filter")
        "resolved-syntactic"
        (Ambig.resolution_name k.Ambig.k_resolution))
    mixed

(* ------------------------------------------------------------------ *)
(* Budget drift.                                                       *)

let test_budget_drift_fails () =
  let bare = Table.build (Fixtures.ambig_expr_grammar ~with_prec:false ()) in
  let report = Ambig.analyze (Ambig.config bare) in
  (* Unresolved classes exceed a zero budget. *)
  let vs =
    Ambig.check_budget { Ambig.b_max_unresolved = 0; b_expect = [] } report
  in
  Alcotest.(check bool) "unresolved over budget" true (vs <> []);
  (* A class resolving differently than expected is a violation. *)
  let lr2_report, _ = analyze_lang Languages.Lr2.language in
  let vs =
    Ambig.check_budget
      {
        Ambig.b_max_unresolved = 0;
        b_expect = [ ("lexical:", "resolved-semantic") ];
      }
      lr2_report
  in
  Alcotest.(check bool) "wrong resolution flagged" true (vs <> []);
  (* A prefix matching no class at all is a violation too. *)
  let vs =
    Ambig.check_budget
      {
        Ambig.b_max_unresolved = 0;
        b_expect = [ ("nonexistent:", "resolved-static") ];
      }
      lr2_report
  in
  Alcotest.(check bool) "missing prefix flagged" true (vs <> [])

(* ------------------------------------------------------------------ *)
(* JSON envelopes.                                                     *)

let member_string key = function
  | Some (Metrics.Json.Obj fields) -> (
      match List.assoc_opt key fields with
      | Some (Metrics.Json.String s) -> Some s
      | _ -> None)
  | _ -> None

let test_json_envelopes () =
  let report, _ = analyze_lang Languages.C_subset.language in
  let j = Ambig.to_json ~language:"c" report in
  Alcotest.(check (option string))
    "ambig schema" (Some "iglr-analysis/1")
    (member_string "schema" (Some j));
  Alcotest.(check (option string))
    "ambig tool" (Some "ambig")
    (member_string "tool" (Some j));
  let table = Language.table Languages.C_subset.language in
  let lj = Analyze.Lint.to_json table (Analyze.Lint.run table) in
  Alcotest.(check (option string))
    "lint schema" (Some "iglr-analysis/1")
    (member_string "schema" (Some lj));
  Alcotest.(check (option string))
    "lint tool" (Some "lint")
    (member_string "tool" (Some lj))

(* ------------------------------------------------------------------ *)
(* Sentence generation (Grammar.Yield).                                *)

(* Every enumerated sentence is derivable (Earley >= 1), within the
   bound, and the list is shortlex-sorted and duplicate-free. *)
let test_yield_enumerate_sound () =
  let g = Languages.Calc.language.Language.grammar in
  let sentences = Yield.enumerate g ~from:(Cfg.start g) ~max_len:4 in
  Alcotest.(check bool) "nonempty" true (sentences <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        let la = List.length a and lb = List.length b in
        (la < lb || (la = lb && compare a b < 0)) && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "shortlex sorted, no dups" true (sorted sentences);
  List.iter
    (fun s ->
      Alcotest.(check bool) "within bound" true (List.length s <= 4);
      let count = Earley.count_derivations g (Array.of_list s) in
      if count < 1 then
        Alcotest.failf "underivable sentence of length %d" (List.length s))
    sentences

(* Every occurrence context wrapped around a shortest yield of the
   nonterminal forms a derivable sentence. *)
let test_yield_contexts_sound () =
  let g = Languages.C_subset.language.Language.grammar in
  let yields = Yield.shortest_yields g in
  for nt = 0 to Cfg.num_nonterminals g - 1 do
    match yields (Cfg.N nt) with
    | None -> ()
    | Some y ->
        List.iter
          (fun { Yield.pre; post } ->
            let s = Array.of_list (pre @ y @ post) in
            let count = Earley.count_derivations g s in
            if count < 1 then
              Alcotest.failf "context of %s yields underivable sentence"
                (Cfg.nonterminal_name g nt))
          (Yield.occurrence_contexts ~max_count:8 g nt)
  done

let suite =
  [
    ("witnesses-sound", `Slow, test_witnesses_sound);
    ("conflict-free-clean", `Quick, test_conflict_free_grammar_clean);
    ("lr2-certified", `Quick, test_lr2_certified_unambiguous);
    ("calc-all-static", `Quick, test_calc_all_static);
    ("c-coverage", `Slow, test_c_coverage);
    ("cpp-coverage", `Slow, test_cpp_coverage);
    ("expr-grammar-stages", `Quick, test_expr_grammar_stages);
    ("budget-drift-fails", `Quick, test_budget_drift_fails);
    ("json-envelopes", `Quick, test_json_envelopes);
    ("yield-enumerate-sound", `Quick, test_yield_enumerate_sound);
    ("yield-contexts-sound", `Slow, test_yield_contexts_sound);
  ]
