(* Local error isolation and resource-bounded parsing.

   The tentpole invariants under test:

   - a syntax error is confined to the smallest enclosing isolation unit
     (a statement-level sequence element): the damaged run is wrapped in
     an explicit error node, the rest of the document reparses and
     reuses normally, and the committed tree passes the dag sanitizer
     (which knows the error-subtree rules);
   - flagged regions are re-offered on later edits and the session
     converges back to a clean, batch-identical parse once the text is
     repaired;
   - resource budgets (max parsers / max nodes / deadline) degrade
     deterministically — every reparse terminates with an outcome, never
     an uncaught exception. *)

module Session = Iglr.Session
module Glr = Iglr.Glr
module Node = Parsedag.Node
module Language = Languages.Language
module Check = Analyze.Check

let calc = Languages.Calc.language
let clang = Languages.C_subset.language

let base_calc =
  String.concat "\n"
    (List.init 12 (fun i -> Printf.sprintf "v%d = (1%d + 2) * x%d / 3;" i i i))
  ^ "\n"

let make ?budget lang text =
  Session.create ?budget ~table:(Language.table lang)
    ~lexer:(Language.lexer lang) text

(* From-scratch oracle, as in the differential fuzzer. *)
let batch_sexp lang text =
  let tokens, trailing = Lexgen.Scanner.all (Language.lexer lang) text in
  let root, _ = Glr.parse_tokens (Language.table lang) tokens ~trailing in
  Parsedag.Pp.to_sexp lang.Language.grammar root

let assert_sane ?allow_pending lang s =
  Check.assert_dag ?allow_pending ~expect_text:(Session.text s)
    (Language.table lang) (Session.root s)

type rec_info = {
  flagged : int;
  isolated : int;
  degraded : bool;
  error : Glr.error;
  location : Session.location;
}

let recovered = function
  | Session.Recovered { flagged; isolated; degraded; error; location } ->
      { flagged; isolated; degraded; error; location }
  | Session.Parsed _ -> Alcotest.fail "expected a recovered outcome"

let parsed = function
  | Session.Parsed st -> st
  | Session.Recovered _ -> Alcotest.fail "expected a clean parse"

(* Byte offset of the [n]-th (0-based) occurrence of [sub] in [text]. *)
let pos_of text sub n =
  let rec go from n =
    let i = Str.search_forward (Str.regexp_string sub) text from in
    if n = 0 then i else go (i + 1) (n - 1)
  in
  go 0 n

let count_error_nodes root =
  let c = ref 0 in
  Node.iter
    (fun (n : Node.t) ->
      match n.Node.kind with Node.Error _ -> incr c | _ -> ())
    root;
  !c

(* Break statement [i] of [base_calc] by injecting an invalid token run
   after its "=" sign. *)
let break_stmt s i =
  let p = pos_of (Session.text s) "=" i in
  Session.edit s ~pos:(p + 1) ~del:0 ~insert:" ) ("

(* --- isolation ---------------------------------------------------- *)

let test_isolate_one_statement () =
  let s, o0 = make calc base_calc in
  ignore (parsed o0);
  break_stmt s 5;
  let r = recovered (Session.reparse s) in
  Alcotest.(check bool) "isolated" true (r.isolated >= 1);
  Alcotest.(check bool) "damage confined to one statement" true
    (r.flagged <= 14);
  Alcotest.(check bool) "has_errors" true (Session.has_errors s);
  assert_sane calc s

let test_error_node_shape () =
  let s, _ = make calc base_calc in
  break_stmt s 5;
  let r = recovered (Session.reparse s) in
  Alcotest.(check int) "one error node per region" r.isolated
    (count_error_nodes (Session.root s));
  Node.iter
    (fun (n : Node.t) ->
      match n.Node.kind with
      | Node.Error _ ->
          Alcotest.(check bool) "error kids are terminals" true
            (Array.for_all
               (fun (k : Node.t) ->
                 match k.Node.kind with Node.Term _ -> true | _ -> false)
               n.Node.kids);
          Alcotest.(check bool) "error flag set" true n.Node.error
      | _ -> ())
    (Session.root s)

let test_location_line_col () =
  let s, _ = make calc base_calc in
  break_stmt s 5;
  let r = recovered (Session.reparse s) in
  (* The broken statement is on line 6 (1-based); both the outcome
     location and the reported region must land there. *)
  Alcotest.(check int) "error line" 6 r.location.Session.line;
  match Session.error_regions s with
  | [ reg ] ->
      Alcotest.(check int) "region line" 6 reg.Session.r_start.Session.line;
      Alcotest.(check int) "region col" 1 reg.Session.r_start.Session.col;
      Alcotest.(check int) "region tokens" r.flagged reg.Session.r_tokens;
      Alcotest.(check bool) "byte span ordered" true
        (reg.Session.r_start.Session.offset_bytes < reg.Session.r_end_byte)
  | rs -> Alcotest.failf "expected 1 region, got %d" (List.length rs)

let test_error_at_eof () =
  let s, _ = make calc base_calc in
  (* Drop the final ";": the error is only detectable at end of input. *)
  let p = pos_of (Session.text s) ";" 11 in
  Session.edit s ~pos:p ~del:1 ~insert:"";
  let r = recovered (Session.reparse s) in
  Alcotest.(check bool) "reported near eof" true
    (r.error.Glr.offset_tokens >= 12 * 11);
  Alcotest.(check bool) "regions reported" true
    (Session.error_regions s <> []);
  (* Repair converges. *)
  Session.edit s ~pos:(String.length (Session.text s) - 1) ~del:0 ~insert:";";
  ignore (parsed (Session.reparse s));
  Alcotest.(check int) "no regions after repair" 0
    (List.length (Session.error_regions s));
  assert_sane calc s

let test_adjacent_regions_merge () =
  let s, _ = make calc base_calc in
  break_stmt s 5;
  break_stmt s 6;
  let r = recovered (Session.reparse s) in
  Alcotest.(check bool) "isolated" true (r.isolated >= 1);
  assert_sane calc s;
  Alcotest.(check bool) "both lines damaged" true (r.flagged >= 2)

let test_two_distant_regions () =
  let s, _ = make calc base_calc in
  break_stmt s 2;
  break_stmt s 9;
  let r = recovered (Session.reparse s) in
  Alcotest.(check int) "two isolated regions" 2 r.isolated;
  let regions = Session.error_regions s in
  Alcotest.(check int) "two reported regions" 2 (List.length regions);
  (match regions with
  | [ a; b ] ->
      Alcotest.(check bool) "regions in source order" true
        (a.Session.r_start.Session.offset_bytes
        < b.Session.r_start.Session.offset_bytes)
  | _ -> assert false);
  assert_sane calc s

let test_edit_inside_region_converges () =
  let s, _ = make calc base_calc in
  break_stmt s 5;
  ignore (recovered (Session.reparse s));
  (* Remove the injected garbage: the session must converge to a clean,
     batch-identical parse. *)
  let p = pos_of (Session.text s) ") (" 0 in
  Session.edit s ~pos:p ~del:3 ~insert:"";
  ignore (parsed (Session.reparse s));
  Alcotest.(check bool) "has_errors cleared" false (Session.has_errors s);
  Alcotest.(check int) "no regions" 0 (List.length (Session.error_regions s));
  Alcotest.(check int) "no error nodes" 0
    (count_error_nodes (Session.root s));
  Alcotest.(check string) "batch-identical"
    (batch_sexp calc (Session.text s))
    (Parsedag.Pp.to_sexp calc.Language.grammar (Session.root s))

let test_edit_outside_region_keeps_error () =
  let s, _ = make calc base_calc in
  break_stmt s 2;
  ignore (recovered (Session.reparse s));
  (* A distant edit integrates normally; the flagged region persists with
     a stable span. *)
  let p = pos_of (Session.text s) "3;" 10 in
  Session.edit s ~pos:p ~del:1 ~insert:"777";
  let r = recovered (Session.reparse s) in
  Alcotest.(check int) "region stable" 1 r.isolated;
  Alcotest.(check int) "one region reported" 1
    (List.length (Session.error_regions s));
  assert_sane calc s;
  (* Now repair the broken statement: everything converges. *)
  let p = pos_of (Session.text s) ") (" 0 in
  Session.edit s ~pos:p ~del:3 ~insert:"";
  ignore (parsed (Session.reparse s));
  Alcotest.(check string) "batch-identical after repair"
    (batch_sexp calc (Session.text s))
    (Parsedag.Pp.to_sexp calc.Language.grammar (Session.root s))

let test_edit_merges_two_regions () =
  let s, _ = make calc base_calc in
  break_stmt s 4;
  break_stmt s 6;
  let r = recovered (Session.reparse s) in
  Alcotest.(check int) "two regions" 2 r.isolated;
  (* Delete the intact statement between them: the damaged runs become
     adjacent and must merge into a single region. *)
  let lo = pos_of (Session.text s) "v5" 0 in
  let hi = pos_of (Session.text s) "v6" 0 in
  Session.edit s ~pos:lo ~del:(hi - lo) ~insert:"";
  let r = recovered (Session.reparse s) in
  Alcotest.(check int) "merged into one region" 1 r.isolated;
  Alcotest.(check int) "one region reported" 1
    (List.length (Session.error_regions s));
  assert_sane calc s

let test_initial_parse_error_isolated () =
  (* A document that is broken from the start: already the initial parse
     confines the damage (the lone ";" masks away to the empty program). *)
  let s, o = make calc ";" in
  let r = recovered o in
  Alcotest.(check int) "isolated at creation" 1 r.isolated;
  Alcotest.(check int) "one region" 1 (List.length (Session.error_regions s));
  assert_sane calc s;
  Session.edit s ~pos:0 ~del:0 ~insert:"x = 1 ";
  ignore (parsed (Session.reparse s));
  Alcotest.(check int) "clean after repair" 0
    (List.length (Session.error_regions s))

(* --- the reuse criterion ------------------------------------------ *)

(* A document with one (early) syntax error must still reuse >= 90% of
   its tree on edits outside the damaged region — asserted through the
   metrics layer, per the acceptance criterion. *)
let test_reuse_outside_error () =
  let src = Workload.Spec_gen.nested ~depth:9 ~seed:3 in
  let s, o0 = make clang src in
  ignore (parsed o0);
  (* Break an early statement. *)
  let p = pos_of (Session.text s) "=" 0 in
  Session.edit s ~pos:(p + 1) ~del:0 ~insert:" ) (";
  ignore (recovered (Session.reparse s));
  assert_sane clang s;
  let total = Node.count_nodes (Session.root s) in
  (* Edit far from the error: append a statement after the last ";". *)
  let before = Session.metrics s in
  let p = String.rindex (Session.text s) ';' in
  Session.edit s ~pos:(p + 1) ~del:0 ~insert:" zz = 2;";
  ignore (recovered (Session.reparse s));
  assert_sane clang s;
  let d = Metrics.diff (Session.metrics s) before in
  let created = Metrics.count d "glr.nodes_created" in
  let reused_pct =
    100. *. (1. -. (float_of_int created /. float_of_int total))
  in
  if reused_pct < 90. then
    Alcotest.failf
      "edit outside the error region rebuilt %d of %d nodes (%.1f%% reuse, \
       need >= 90%%)"
      created total reused_pct

(* --- budgets ------------------------------------------------------ *)

let test_budget_max_nodes () =
  let budget = { Glr.no_budget with Glr.max_nodes = 5 } in
  let s, o = make ~budget calc base_calc in
  let r = recovered o in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool) "reports the budget kind" true
    (String.length r.error.Glr.message > 0
    && Str.string_match (Str.regexp ".*nodes") r.error.Glr.message 0);
  (* The session stays usable: later edits keep terminating with an
     outcome, never an exception. *)
  Session.edit s ~pos:0 ~del:0 ~insert:"q = 1; ";
  ignore (recovered (Session.reparse s));
  Alcotest.(check bool) "has_errors" true (Session.has_errors s)

let test_budget_deadline () =
  let budget = { Glr.no_budget with Glr.deadline_ms = 0. } in
  let s, o = make ~budget calc base_calc in
  let r = recovered o in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool) "reports the deadline" true
    (Str.string_match (Str.regexp ".*deadline") r.error.Glr.message 0);
  Session.edit s ~pos:0 ~del:0 ~insert:"q = 1; ";
  ignore (recovered (Session.reparse s))

let test_budget_max_parsers () =
  (* The Figure 1 C program forks parsers on the decl/call ambiguity; a
     width-1 budget forces deterministic pruning.  Whatever the outcome,
     the parse terminates and the pruning is visible in the metrics. *)
  let src = "typedef int a;\nint foo () { int i; a (b); c (d); i = 1; }\n" in
  let budget = { Glr.no_budget with Glr.max_parsers = 1 } in
  let s, o = make ~budget clang src in
  (match o with
  | Session.Parsed st ->
      Alcotest.(check bool) "parse marked degraded" true st.Glr.degraded
  | Session.Recovered r ->
      Alcotest.(check bool) "recovery marked degraded" true r.degraded);
  let m = Session.metrics s in
  Alcotest.(check bool) "parsers were pruned" true
    (Metrics.count m "glr.pruned_parsers" >= 1)

let test_budget_unbounded_matches_default () =
  (* [no_budget] must be behaviorally invisible. *)
  let s1, o1 = make calc base_calc in
  let s2, o2 = make ~budget:Glr.no_budget calc base_calc in
  ignore (parsed o1);
  ignore (parsed o2);
  Alcotest.(check string) "same tree"
    (Parsedag.Pp.to_sexp calc.Language.grammar (Session.root s1))
    (Parsedag.Pp.to_sexp calc.Language.grammar (Session.root s2))

(* --- sanitizer and GSS validation --------------------------------- *)

let test_check_dag_error_rules () =
  let s, _ = make calc base_calc in
  break_stmt s 5;
  ignore (recovered (Session.reparse s));
  Alcotest.(check int) "sanitizer accepts the recovered dag" 0
    (List.length
       (Check.dag ~expect_text:(Session.text s) (Session.table s)
          (Session.root s)));
  (* Corrupting the error node must be caught specifically. *)
  let e = ref None in
  Node.iter
    (fun (n : Node.t) ->
      match n.Node.kind with Node.Error _ -> e := Some n | _ -> ())
    (Session.root s);
  let e = Option.get !e in
  e.Node.state <- 3;
  Alcotest.(check bool) "stateful error node flagged" true
    (Check.dag (Session.table s) (Session.root s) <> []);
  e.Node.state <- Node.nostate;
  e.Node.error <- false;
  Alcotest.(check bool) "unflagged error node flagged" true
    (Check.dag (Session.table s) (Session.root s) <> []);
  e.Node.error <- true

let test_gss_validate_max_parsers () =
  let bottom = Iglr.Gss.make_node ~state:0 [] in
  let label = Node.make_term ~term:1 ~text:"x" ~trivia:"" ~lex_la:0 in
  let top st =
    Iglr.Gss.make_node ~state:st
      [ Iglr.Gss.make_link ~head:bottom ~label ]
  in
  let tops = [ top 1; top 2; top 3 ] in
  Alcotest.(check int) "within budget" 0
    (List.length (Iglr.Gss.validate ~max_parsers:3 ~num_states:4 tops));
  Alcotest.(check bool) "over budget flagged" true
    (Iglr.Gss.validate ~max_parsers:2 ~num_states:4 tops <> [])

(* --- degraded-tree invariants ------------------------------------- *)

let test_token_counts_after_isolation () =
  let s, _ = make calc base_calc in
  break_stmt s 3;
  break_stmt s 8;
  ignore (recovered (Session.reparse s));
  let doc = Session.document s in
  Alcotest.(check int) "root token count spans the document"
    (Vdoc.Document.token_count doc)
    (Node.token_count (Session.root s));
  (* Full-text rewrite from any damaged state converges to batch. *)
  let n = String.length (Session.text s) in
  Session.edit s ~pos:0 ~del:n ~insert:base_calc;
  ignore (parsed (Session.reparse s));
  Alcotest.(check string) "batch-identical"
    (batch_sexp calc base_calc)
    (Parsedag.Pp.to_sexp calc.Language.grammar (Session.root s))

let suite =
  [
    Alcotest.test_case "isolate one broken statement" `Quick
      test_isolate_one_statement;
    Alcotest.test_case "error node shape" `Quick test_error_node_shape;
    Alcotest.test_case "error location line:col" `Quick
      test_location_line_col;
    Alcotest.test_case "error at end of input" `Quick test_error_at_eof;
    Alcotest.test_case "adjacent damaged statements" `Quick
      test_adjacent_regions_merge;
    Alcotest.test_case "two distant regions" `Quick test_two_distant_regions;
    Alcotest.test_case "edit inside region converges" `Quick
      test_edit_inside_region_converges;
    Alcotest.test_case "edit outside region keeps error" `Quick
      test_edit_outside_region_keeps_error;
    Alcotest.test_case "edit merges two regions" `Quick
      test_edit_merges_two_regions;
    Alcotest.test_case "initial parse error isolated" `Quick
      test_initial_parse_error_isolated;
    Alcotest.test_case "reuse >= 90% outside the error" `Quick
      test_reuse_outside_error;
    Alcotest.test_case "budget: max nodes" `Quick test_budget_max_nodes;
    Alcotest.test_case "budget: deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget: max parsers" `Quick test_budget_max_parsers;
    Alcotest.test_case "budget: unbounded is invisible" `Quick
      test_budget_unbounded_matches_default;
    Alcotest.test_case "sanitizer error-node rules" `Quick
      test_check_dag_error_rules;
    Alcotest.test_case "gss validate max-parsers" `Quick
      test_gss_validate_max_parsers;
    Alcotest.test_case "token counts + full rewrite converges" `Quick
      test_token_counts_after_isolation;
  ]
