(* Protocol conformance for the iglrd engine: every RPC method answered
   with a well-formed iglr-analysis/1 envelope, and every failure mode —
   malformed JSON, non-object requests, unknown methods, unknown and
   duplicate document ids, unknown languages, ill-typed params, oversized
   payloads, out-of-range edits — answered with a structured error
   envelope carrying the right code.  The engine must never raise from
   [handle_line] and never drop a response: each assertion here also
   implicitly checks that request k got answer k (inline mode emits
   strictly in order). *)

module Json = Metrics.Json
module Engine = Server.Engine
module Protocol = Server.Protocol

(* Inline single-threaded engine: responses are emitted synchronously
   during [handle_line], so [req] returns THE response to its line. *)
let with_engine ?max_payload f =
  let buf = ref [] in
  let engine =
    Engine.create ~jobs:0 ?max_payload ~emit:(fun l -> buf := l :: !buf) ()
  in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let req line =
        let before = List.length !buf in
        Engine.handle_line engine line;
        match !buf with
        | r :: _ when List.length !buf = before + 1 -> Json.of_string r
        | _ -> Alcotest.failf "no (single) response to %s" line
      in
      f engine req)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_line j)

let str name j =
  match Json.to_str (member name j) with
  | Some s -> s
  | None -> Alcotest.failf "%S is not a string" name

let int name j =
  match Json.to_int (member name j) with
  | Some i -> i
  | None -> Alcotest.failf "%S is not an integer" name

let check_envelope j =
  Alcotest.(check string) "schema" "iglr-analysis/1" (str "schema" j);
  Alcotest.(check string) "tool" "iglrd" (str "tool" j)

let result j =
  check_envelope j;
  (match Json.member "error" j with
  | Some e -> Alcotest.failf "unexpected error response: %s" (Json.to_line e)
  | None -> ());
  member "result" j

let error ~code j =
  check_envelope j;
  (match Json.member "result" j with
  | Some _ -> Alcotest.failf "expected an error, got: %s" (Json.to_line j)
  | None -> ());
  let e = member "error" j in
  Alcotest.(check int) "error code" code (int "code" e);
  (* The message must be present and human-readable. *)
  Alcotest.(check bool) "has message" true (String.length (str "message" e) > 0)

let obj fields = Json.to_line (Json.Obj fields)

let open_req ?(doc = "d") ?(lang = "calc") ?(text = "1+2;") ?(id = 1) () =
  obj
    [
      ("id", Json.Int id);
      ("method", Json.String "open");
      ( "params",
        Json.Obj
          [
            ("doc", Json.String doc);
            ("lang", Json.String lang);
            ("text", Json.String text);
          ] );
    ]

(* ------------------------------------------------------------------ *)

let happy_path () =
  with_engine @@ fun _ req ->
  let r = result (req (open_req ~text:"1+2;\n3*4;\n" ())) in
  Alcotest.(check string) "open doc" "d" (str "doc" r);
  Alcotest.(check string) "open lang" "calc" (str "lang" r);
  Alcotest.(check string)
    "open status" "parsed"
    (str "status" (member "outcome" r));
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 2);
              ("method", Json.String "edit");
              ( "params",
                Json.Obj
                  [
                    ("doc", Json.String "d");
                    ( "edits",
                      Json.List
                        [
                          Json.Obj
                            [
                              ("pos", Json.Int 0);
                              ("del", Json.Int 1);
                              ("insert", Json.String "7");
                            ];
                        ] );
                  ] );
            ]))
  in
  Alcotest.(check int) "edits applied" 1 (int "applied" r);
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 3);
              ("method", Json.String "parse");
              ("params", Json.Obj [ ("doc", Json.String "d") ]);
            ]))
  in
  let outcome = member "outcome" r in
  Alcotest.(check string) "parse status" "parsed" (str "status" outcome);
  Alcotest.(check bool)
    "incremental reuse" true
    (int "shifted_subtrees" outcome > 0);
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 4);
              ("method", Json.String "errors");
              ("params", Json.Obj [ ("doc", Json.String "d") ]);
            ]))
  in
  (match member "regions" r with
  | Json.List [] -> ()
  | j -> Alcotest.failf "expected no damaged regions, got %s" (Json.to_line j));
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 5);
              ("method", Json.String "stats");
              ("params", Json.Obj [ ("doc", Json.String "d") ]);
            ]))
  in
  Alcotest.(check string) "stats lang" "calc" (str "lang" r);
  Alcotest.(check int) "stats tokens" 8 (int "tokens" r);
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 6);
              ("method", Json.String "close");
              ("params", Json.Obj [ ("doc", Json.String "d") ]);
            ]))
  in
  match member "closed" r with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "close returned %s" (Json.to_line j)

let server_stats () =
  with_engine @@ fun engine req ->
  ignore (result (req (open_req ~doc:"a" ())));
  ignore (result (req (open_req ~doc:"b" ~id:2 ())));
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 3);
              ("method", Json.String "stats");
              ("params", Json.Obj []);
            ]))
  in
  (match member "docs" r with
  | Json.List [ Json.String "a"; Json.String "b" ] -> ()
  | j -> Alcotest.failf "docs = %s" (Json.to_line j));
  Alcotest.(check int) "requests counted" 3 (int "requests" r);
  Alcotest.(check int) "requests accessor" 3 (Engine.requests engine);
  (* metrics: true must attach the registry snapshot. *)
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 4);
              ("method", Json.String "stats");
              ("params", Json.Obj [ ("metrics", Json.Bool true) ]);
            ]))
  in
  ignore (member "metrics" r)

(* Malformed inputs: each one must yield a structured error envelope with
   the matching code — never an exception, never silence. *)

let malformed_json () =
  with_engine @@ fun _ req ->
  let j = req "{this is not json" in
  error ~code:Protocol.e_parse j;
  match member "id" j with
  | Json.Null -> ()
  | j -> Alcotest.failf "parse-error id should be null, got %s" (Json.to_line j)

let non_object () =
  with_engine @@ fun _ req ->
  error ~code:Protocol.e_invalid_request (req "[1,2,3]");
  error ~code:Protocol.e_invalid_request (req "\"hello\"");
  error ~code:Protocol.e_invalid_request (req "42")

let missing_method () =
  with_engine @@ fun _ req ->
  let j = req (obj [ ("id", Json.Int 9); ("params", Json.Obj []) ]) in
  error ~code:Protocol.e_invalid_request j;
  (* The id still echoes so the client can correlate. *)
  Alcotest.(check int) "id echoed" 9 (int "id" j)

let unknown_method () =
  with_engine @@ fun _ req ->
  error ~code:Protocol.e_method
    (req (obj [ ("id", Json.Int 1); ("method", Json.String "frobnicate") ]))

let bad_params () =
  with_engine @@ fun _ req ->
  (* params not an object *)
  error ~code:Protocol.e_params
    (req
       (obj
          [
            ("id", Json.Int 1);
            ("method", Json.String "open");
            ("params", Json.List []);
          ]));
  (* missing required string param *)
  error ~code:Protocol.e_params
    (req
       (obj
          [
            ("id", Json.Int 2);
            ("method", Json.String "open");
            ( "params",
              Json.Obj [ ("doc", Json.String "d"); ("lang", Json.String "calc") ]
            );
          ]));
  (* edits not a list *)
  error ~code:Protocol.e_params
    (req
       (obj
          [
            ("id", Json.Int 3);
            ("method", Json.String "edit");
            ( "params",
              Json.Obj
                [ ("doc", Json.String "d"); ("edits", Json.String "nope") ] );
          ]));
  (* ill-typed budget field *)
  error ~code:Protocol.e_params
    (req
       (obj
          [
            ("id", Json.Int 4);
            ("method", Json.String "parse");
            ( "params",
              Json.Obj
                [
                  ("doc", Json.String "d");
                  ( "budget",
                    Json.Obj [ ("deadline_ms", Json.String "soon") ] );
                ] );
          ]))

let unknown_doc () =
  with_engine @@ fun _ req ->
  List.iter
    (fun (meth, extra) ->
      error ~code:Protocol.e_unknown_doc
        (req
           (obj
              [
                ("id", Json.Int 1);
                ("method", Json.String meth);
                ( "params",
                  Json.Obj (("doc", Json.String "ghost") :: extra) );
              ])))
    [
      ("edit", [ ("edits", Json.List []) ]);
      ("parse", []);
      ("errors", []);
      ("ambig", []);
      ("stats", []);
      ("close", []);
    ]

let duplicate_doc () =
  with_engine @@ fun _ req ->
  ignore (result (req (open_req ())));
  error ~code:Protocol.e_doc_exists (req (open_req ~id:2 ()));
  (* ... and the original session is untouched by the rejected open. *)
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 3);
              ("method", Json.String "parse");
              ("params", Json.Obj [ ("doc", Json.String "d") ]);
            ]))
  in
  Alcotest.(check string)
    "original still parses" "parsed"
    (str "status" (member "outcome" r))

let unknown_lang () =
  with_engine @@ fun _ req ->
  error ~code:Protocol.e_unknown_lang (req (open_req ~lang:"cobol" ()))

let oversized_payload () =
  with_engine ~max_payload:256 @@ fun _ req ->
  let j = req (open_req ~text:(String.make 1024 'x') ()) in
  error ~code:Protocol.e_payload j;
  (match member "id" j with
  | Json.Null -> ()
  | j ->
      Alcotest.failf "oversized request must not be parsed for an id: %s"
        (Json.to_line j));
  (* A small request still goes through: the engine survived. *)
  ignore (result (req (open_req ~id:2 ())))

let edit_out_of_bounds () =
  with_engine @@ fun _ req ->
  ignore (result (req (open_req ~text:"1;" ())));
  error ~code:Protocol.e_params
    (req
       (obj
          [
            ("id", Json.Int 2);
            ("method", Json.String "edit");
            ( "params",
              Json.Obj
                [
                  ("doc", Json.String "d");
                  ( "edits",
                    Json.List
                      [
                        Json.Obj
                          [ ("pos", Json.Int 9999); ("insert", Json.String "x") ];
                      ] );
                ] );
          ]));
  (* The document is unchanged and the session still serves. *)
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 3);
              ("method", Json.String "stats");
              ("params", Json.Obj [ ("doc", Json.String "d") ]);
            ]))
  in
  Alcotest.(check int) "tokens unchanged" 2 (int "tokens" r)

(* The shared-table guarantee, pinned via the metrics registry: the
   registry's lazies mean a language's LR table is built at most once per
   process, so a second [open] of an already-loaded language — same
   engine or a brand-new one — performs zero table constructions. *)
let zero_rebuilds () =
  with_engine @@ fun _ req ->
  ignore (result (req (open_req ~doc:"warm" ())));
  let builds () = Metrics.count (Metrics.snapshot ()) "lrtab.table_builds" in
  let before = builds () in
  ignore (result (req (open_req ~doc:"second" ~id:2 ())));
  Alcotest.(check int) "second open builds no table" before (builds ());
  with_engine @@ fun _ req2 ->
  ignore (result (req2 (open_req ~doc:"other-engine" ())));
  Alcotest.(check int) "fresh engine builds no table" before (builds ())

(* The ambig response is the language's static ambiguity report: it must
   be structurally identical to running Analyze.Ambig directly with the
   language's declared disambiguation spec. *)
let ambig_matches_analyzer () =
  with_engine @@ fun _ req ->
  ignore (result (req (open_req ())));
  let r =
    result
      (req
         (obj
            [
              ("id", Json.Int 2);
              ("method", Json.String "ambig");
              ( "params",
                Json.Obj [ ("doc", Json.String "d"); ("max_len", Json.Int 4) ]
              );
            ]))
  in
  let lang = Option.get (Languages.Registry.find "calc") in
  let spec = lang.Languages.Language.ambig in
  let config =
    Analyze.Ambig.config ~syn_filters:spec.Languages.Language.syn_filters
      ?sem_policy:spec.Languages.Language.sem_policy
      ~sem_preamble:spec.Languages.Language.sem_preamble
      ~lexemes:spec.Languages.Language.lexemes ~max_len:4
      (Languages.Language.table lang)
  in
  let expected =
    Analyze.Ambig.to_json ~language:"calc" (Analyze.Ambig.analyze config)
  in
  Alcotest.(check string)
    "report = direct analyzer" (Json.to_line expected)
    (Json.to_line (member "report" r))

let blank_lines_ignored () =
  with_engine @@ fun engine req ->
  Engine.handle_line engine "";
  Engine.handle_line engine "   \t  ";
  ignore (result (req (open_req ())));
  (* Blank lines are not requests: only the open counted. *)
  Alcotest.(check int) "blank lines not counted" 1 (Engine.requests engine)

let suite =
  [
    Alcotest.test_case "happy path: open/edit/parse/errors/stats/close" `Quick
      happy_path;
    Alcotest.test_case "server-wide stats" `Quick server_stats;
    Alcotest.test_case "malformed JSON -> -32700" `Quick malformed_json;
    Alcotest.test_case "non-object request -> -32600" `Quick non_object;
    Alcotest.test_case "missing method -> -32600, id echoed" `Quick
      missing_method;
    Alcotest.test_case "unknown method -> -32601" `Quick unknown_method;
    Alcotest.test_case "ill-typed params -> -32602" `Quick bad_params;
    Alcotest.test_case "unknown doc -> -32001 on every method" `Quick
      unknown_doc;
    Alcotest.test_case "duplicate open -> -32002, session intact" `Quick
      duplicate_doc;
    Alcotest.test_case "unknown language -> -32003" `Quick unknown_lang;
    Alcotest.test_case "oversized payload -> -32005, engine survives" `Quick
      oversized_payload;
    Alcotest.test_case "out-of-range edit -> -32602, doc unchanged" `Quick
      edit_out_of_bounds;
    Alcotest.test_case "shared tables: second open builds nothing" `Quick
      zero_rebuilds;
    Alcotest.test_case "ambig = direct analyzer output" `Quick
      ambig_matches_analyzer;
    Alcotest.test_case "blank lines ignored" `Quick blank_lines_ignored;
  ]
