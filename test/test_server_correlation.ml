(* Request correlation through the daemon engine: a scripted multi-doc
   conversation on a multi-domain engine must carry the dispatcher's
   sequence number everywhere — a dense, in-order [req] field on every
   response, a [req] field on every access-log line, an [rid] argument
   on every trace event — and the per-request metric diffs a [parse
   metrics:true] returns must equal a single-threaded replay of the same
   document (the Session oracle), despite the other documents parsing
   concurrently on sibling domains. *)

module J = Metrics.Json
module E = Server.Engine

let lang = Option.get (Languages.Registry.find "calc")
let () = Languages.Registry.force lang

(* Collected engine output: [emit]/[log] are called under the writer
   lock from worker domains, so the sinks only push onto guarded
   lists. *)
type sink = { m : Mutex.t; mutable lines : string list }

let sink () = { m = Mutex.create (); lines = [] }

let push s line =
  Mutex.lock s.m;
  s.lines <- line :: s.lines;
  Mutex.unlock s.m

let contents s =
  Mutex.lock s.m;
  let l = List.rev s.lines in
  Mutex.unlock s.m;
  l

let docs = [ "a.calc"; "b.calc"; "c.calc"; "d.calc" ]
let initial_text = "1+2*3;\n"
let edit_insert round = Printf.sprintf "%d+" round
let rounds = 5

(* The scripted conversation: open every doc, then [rounds] of
   edit+parse per doc (parses requesting their metric diff), close. *)
let script () =
  let req = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string req (s ^ "\n")) fmt in
  let id = ref 0 in
  let next_id () = incr id; !id in
  List.iter
    (fun d ->
      line {|{"id": %d, "method": "open", "params": {"doc": "%s", "lang": "calc", "text": "1+2*3;\n"}}|}
        (next_id ()) d)
    docs;
  for r = 1 to rounds do
    List.iter
      (fun d ->
        line
          {|{"id": %d, "method": "edit", "params": {"doc": "%s", "edits": [{"pos": 0, "del": 0, "insert": "%s"}]}}|}
          (next_id ()) d (edit_insert r);
        line
          {|{"id": %d, "method": "parse", "params": {"doc": "%s", "metrics": true}}|}
          (next_id ()) d)
      docs
  done;
  List.iter
    (fun d ->
      line {|{"id": %d, "method": "close", "params": {"doc": "%s"}}|}
        (next_id ()) d)
    docs;
  String.split_on_char '\n' (Buffer.contents req)
  |> List.filter (fun l -> String.trim l <> "")

let run_engine () =
  let out = sink () and log = sink () in
  let engine =
    E.create ~jobs:4 ~log:(push log) ~emit:(push out) ()
  in
  Fun.protect ~finally:(fun () -> E.shutdown engine) @@ fun () ->
  List.iter (E.handle_line engine) (script ());
  E.drain engine;
  (contents out, contents log)

let member_int name j = Option.bind (J.member name j) J.to_int

let responses_carry_dense_req () =
  let out, log = run_engine () in
  let n = List.length (script ()) in
  Alcotest.(check int) "one response per request" n (List.length out);
  List.iteri
    (fun i l ->
      match member_int "req" (J.of_string l) with
      | Some r -> Alcotest.(check int) "response req in order" i r
      | None -> Alcotest.fail ("response without req: " ^ l))
    out;
  Alcotest.(check int) "one access-log line per request" n (List.length log);
  List.iteri
    (fun i l ->
      let j = J.of_string l in
      (match member_int "req" j with
      | Some r -> Alcotest.(check int) "log req in order" i r
      | None -> Alcotest.fail ("access-log line without req: " ^ l));
      match Option.bind (J.member "status" j) J.to_str with
      | Some "ok" -> ()
      | _ -> Alcotest.fail ("scripted request not ok: " ^ l))
    log

let events_carry_rid () =
  Trace.set_capacity 65536;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
  @@ fun () ->
  Trace.clear ();
  let out, _ = run_engine () in
  Alcotest.(check int) "no trace drops" 0 (Trace.dropped ());
  let evs = Trace.events () in
  if evs = [] then Alcotest.fail "engine recorded no trace events";
  List.iter
    (fun (e : Trace.event) ->
      match Trace.str_arg "rid" e with
      | Some _ -> ()
      | None ->
          Alcotest.fail
            (Printf.sprintf "event %s.%s lacks a request id"
               (Trace.cat_name e.Trace.cat) e.Trace.name))
    evs;
  (* The rids seen in the stream are request sequence numbers the
     responses also carried. *)
  let resp_reqs =
    List.filter_map (fun l -> member_int "req" (J.of_string l)) out
    |> List.map string_of_int
  in
  List.iter
    (fun e ->
      match Trace.str_arg "rid" e with
      | Some rid when List.mem rid resp_reqs -> ()
      | Some rid -> Alcotest.fail ("rid not a known request: " ^ rid)
      | None -> ())
    evs

(* Counters compared against the oracle: deterministic parse work.
   Timers and latency histograms are excluded (wall-clock). *)
let compared_keys =
  [
    "glr.nodes_created";
    "glr.nodes_reused";
    "glr.reductions";
    "glr.breakdowns";
    "glr.shifted_subtrees";
    "glr.shifted_terminals";
    "vdoc.tokens_relexed";
    "vdoc.tokens_reused";
    "session.reparses";
  ]

let metric_diffs_match_oracle () =
  let out, _ = run_engine () in
  (* Collect the parse responses' metric payloads per doc, in order. *)
  let server_diffs = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let j = J.of_string l in
      match Option.bind (J.member "result" j) (fun r -> J.member "metrics" r) with
      | Some m ->
          let doc =
            match
              Option.bind (J.member "result" j) (fun r ->
                  Option.bind (J.member "doc" r) J.to_str)
            with
            | Some d -> d
            | None -> Alcotest.fail "parse response without doc"
          in
          Hashtbl.replace server_diffs doc
            (m :: (Option.value (Hashtbl.find_opt server_diffs doc) ~default:[]))
      | None -> ())
    out;
  (* Single-threaded oracle: replay one doc's conversation on a bare
     session, measuring each reparse the same way the engine does. *)
  List.iter
    (fun doc ->
      let got = List.rev (Option.value (Hashtbl.find_opt server_diffs doc) ~default:[]) in
      Alcotest.(check int)
        (doc ^ ": one metric diff per parse")
        rounds (List.length got);
      let s, _ =
        Iglr.Session.create
          ~table:(Languages.Language.table lang)
          ~lexer:(Languages.Language.lexer lang)
          initial_text
      in
      List.iteri
        (fun i server_m ->
          let r = i + 1 in
          Iglr.Session.edit s ~pos:0 ~del:0 ~insert:(edit_insert r);
          let _, d = Iglr.Session.measure (fun () -> Iglr.Session.reparse s) in
          let oracle_m = Metrics.to_json d in
          List.iter
            (fun key ->
              let want = Option.value (member_int key oracle_m) ~default:0 in
              let got = Option.value (member_int key server_m) ~default:0 in
              Alcotest.(check int)
                (Printf.sprintf "%s round %d %s" doc r key)
                want got)
            compared_keys)
        got)
    docs

let suite =
  [
    Alcotest.test_case "responses and access log carry req in order" `Quick
      responses_carry_dense_req;
    Alcotest.test_case "every trace event carries its request id" `Quick
      events_carry_rid;
    Alcotest.test_case "per-request metric diffs match the oracle" `Quick
      metric_diffs_match_oracle;
  ]
