(* Differential testing of the GLR engine against the Earley recognizer
   on randomly generated grammars: the strongest correctness evidence for
   the non-deterministic machinery, since conflicts are retained and the
   random grammars are full of them. *)

module Cfg = Grammar.Cfg
module Table = Lrtab.Table
module Node = Parsedag.Node
module Glr = Iglr.Glr

let tokens_of terms =
  List.map
    (fun t ->
      { Lexgen.Scanner.term = t; text = Printf.sprintf "t%d" t; trivia = " ";
        lookahead = 0 })
    terms

(* Every accepted parse also goes through the dag sanitizer: randomly
   generated conflict-heavy grammars are exactly where silent dag
   corruption would hide.  [assert_dag] raises, which QCheck reports as a
   counterexample-carrying failure. *)
let glr_accepts table terms =
  match Glr.parse_tokens table (tokens_of terms) ~trailing:"" with
  | root, _ ->
      Analyze.Check.assert_dag table root;
      true
  | exception Glr.Parse_error _ -> false

(* Random layered grammars (from Test_grammar) have plenty of retained
   conflicts; random strings over their terminals exercise forking, dying
   parsers, and ambiguity packing. *)
let prop_glr_equals_earley =
  QCheck.Test.make ~count:150 ~name:"random grammars: GLR = Earley"
    QCheck.(
      triple
        (triple (int_range 2 5) (int_range 2 4) (int_bound 100000))
        (int_bound 1000) (int_bound 6))
    (fun ((num_nts, num_ts, seed), string_seed, len) ->
      let g = Test_grammar.build_random_grammar (num_nts, num_ts, seed) in
      let table = Table.build g in
      let st = Random.State.make [| string_seed |] in
      (* Random strings; bias half toward genuine derivations so acceptance
         is exercised, not just rejection. *)
      let terms =
        if Random.State.bool st then
          Test_grammar.derive_sentence g st
        else
          List.init len (fun _ ->
              1 + Random.State.int st (Cfg.num_terminals g - 1))
      in
      let earley =
        (Earley.recognize g (Array.of_list terms)).Earley.accepted
      in
      glr_accepts table terms = earley)

(* When GLR accepts, the dag's yield must reproduce the input and every
   choice node's alternatives must share it. *)
let prop_yield_preserved =
  QCheck.Test.make ~count:150 ~name:"random grammars: dag yield = input"
    QCheck.(
      pair (triple (int_range 2 5) (int_range 2 4) (int_bound 100000))
        (int_bound 1000))
    (fun ((num_nts, num_ts, seed), string_seed) ->
      let g = Test_grammar.build_random_grammar (num_nts, num_ts, seed) in
      let table = Table.build g in
      let st = Random.State.make [| string_seed |] in
      let terms = Test_grammar.derive_sentence g st in
      match Glr.parse_tokens table (tokens_of terms) ~trailing:"" with
      | exception Glr.Parse_error _ -> true (* ambiguity-unrelated reject *)
      | root, _ ->
          Analyze.Check.assert_dag table root;
          let expected =
            String.concat ""
              (List.map (fun t -> Printf.sprintf " t%d" t) terms)
          in
          let ok = ref (String.equal (Node.text_yield root) expected) in
          Node.iter
            (fun n ->
              match n.Node.kind with
              | Node.Choice _ ->
                  let y = Node.text_yield n.Node.kids.(0) in
                  Array.iter
                    (fun alt ->
                      if not (String.equal (Node.text_yield alt) y) then
                        ok := false)
                    n.Node.kids
              | _ -> ())
            root;
          !ok)

(* Choice nodes never nest directly (an alternative is always a production
   node), and every node is reachable with consistent token counts. *)
let prop_dag_wellformed =
  QCheck.Test.make ~count:150 ~name:"random grammars: dag well-formed"
    QCheck.(
      pair (triple (int_range 2 5) (int_range 2 4) (int_bound 100000))
        (int_bound 1000))
    (fun ((num_nts, num_ts, seed), string_seed) ->
      let g = Test_grammar.build_random_grammar (num_nts, num_ts, seed) in
      let table = Table.build g in
      let st = Random.State.make [| string_seed |] in
      let terms = Test_grammar.derive_sentence g st in
      match Glr.parse_tokens table (tokens_of terms) ~trailing:"" with
      | exception Glr.Parse_error _ -> true
      | root, _ ->
          Analyze.Check.assert_dag table root;
          let ok = ref true in
          Node.iter
            (fun n ->
              (match n.Node.kind with
              | Node.Choice _ ->
                  Array.iter
                    (fun (alt : Node.t) ->
                      match alt.Node.kind with
                      | Node.Choice _ -> ok := false
                      | _ -> ())
                    n.Node.kids
              | _ -> ());
              match n.Node.kind with
              | Node.Prod _ ->
                  let sum =
                    Array.fold_left
                      (fun acc k -> acc + Node.token_count k)
                      0 n.Node.kids
                  in
                  if sum <> Node.token_count n then ok := false
              | _ -> ())
            root;
          !ok)

let suite =
  [
    Test_seed.to_alcotest prop_glr_equals_earley;
    Test_seed.to_alcotest prop_yield_preserved;
    Test_seed.to_alcotest prop_dag_wellformed;
  ]
