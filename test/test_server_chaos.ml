(* Fault-injected hardening tests for the iglrd engine.

   The chaos invariant, enforced here for every committed plan and for
   a seeded fleet of randomized plans: whatever faults fire, every
   ACCEPTED request yields exactly one response envelope, responses are
   emitted in request order, the engine drains and shuts down cleanly,
   and a killed worker domain is replaced (the worker count is
   invariant).  On top of the invariant, deterministic per-site tests
   pin the semantics of each fault: pre-start crashes retry invisibly,
   mid-execution crashes answer -32006 and quarantine the document,
   handler raises answer -32603 and quarantine, sink failures are
   counted and absorbed, overload sheds -32007 oldest-parse-first,
   queued deadlines cancel accept-relative, and shutdown drains under a
   hard deadline without losing a response. *)

module Json = Metrics.Json
module Engine = Server.Engine
module Pool = Server.Pool
module Session = Iglr.Session

let obj fields = Json.to_line (Json.Obj fields)

(* Fault plans are process-global: every test that installs one must
   clear it, even on assertion failure. *)
let with_plan plan f =
  (match Fault.plan_of_string plan with
  | Ok p -> Fault.install p
  | Error e -> Alcotest.failf "bad test plan %S: %s" plan e);
  Fun.protect ~finally:Fault.clear f

let with_engine ?max_doc_queue ?max_inflight ~jobs f =
  let m = Mutex.create () in
  let buf = ref [] in
  let emit l =
    Mutex.lock m;
    buf := l :: !buf;
    Mutex.unlock m
  in
  let engine = Engine.create ~jobs ?max_doc_queue ?max_inflight ~emit () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      f engine (fun () ->
          Engine.drain engine;
          List.rev !buf))

let send = Engine.handle_line

let open_line ?id ~doc ~lang ~text () =
  obj
    [
      ("id", Json.String (Option.value id ~default:doc));
      ("method", Json.String "open");
      ( "params",
        Json.Obj
          [
            ("doc", Json.String doc);
            ("lang", Json.String lang);
            ("text", Json.String text);
          ] );
    ]

let edit_line ?id ~doc ~pos ~del ~insert () =
  obj
    [
      ("id", Json.String (Option.value id ~default:doc));
      ("method", Json.String "edit");
      ( "params",
        Json.Obj
          [
            ("doc", Json.String doc);
            ( "edits",
              Json.List
                [
                  Json.Obj
                    [
                      ("pos", Json.Int pos);
                      ("del", Json.Int del);
                      ("insert", Json.String insert);
                    ];
                ] );
          ] );
    ]

let parse_line ?id ?deadline_ms ~doc () =
  obj
    [
      ("id", Json.String (Option.value id ~default:doc));
      ("method", Json.String "parse");
      ( "params",
        Json.Obj
          ([ ("doc", Json.String doc) ]
          @
          match deadline_ms with
          | Some d -> [ ("budget", Json.Obj [ ("deadline_ms", Json.Float d) ]) ]
          | None -> []) );
    ]

let close_line ~doc =
  obj
    [
      ("id", Json.String doc);
      ("method", Json.String "close");
      ("params", Json.Obj [ ("doc", Json.String doc) ]);
    ]

let member name j = Json.member name j
let int_of j = Option.get (Json.to_int j)
let str_of j = Option.get (Json.to_str j)

let error_code j =
  Option.bind (member "error" j) (fun e ->
      Option.map int_of (member "code" e))

let req_of j = int_of (Option.get (member "req" j))

let health_int engine field =
  match Option.bind (member field (Engine.health engine)) Json.to_int with
  | Some n -> n
  | None -> Alcotest.failf "health field %S missing or non-int" field

(* The chaos invariant over one collected transcript. *)
let check_invariant ~what engine responses =
  Alcotest.(check int)
    (what ^ ": one response per accepted request")
    (Engine.requests engine)
    (List.length responses);
  List.iteri
    (fun i r ->
      let j =
        try Json.of_string r
        with _ -> Alcotest.failf "%s: response %d not JSON: %s" what i r
      in
      (match (member "result" j, member "error" j) with
      | Some _, None | None, Some _ -> ()
      | _ -> Alcotest.failf "%s: response %d not an envelope: %s" what i r);
      (* Dense, increasing req = in-order emission AND no lost slot. *)
      Alcotest.(check int)
        (Printf.sprintf "%s: response %d in request order" what i)
        i (req_of j))
    responses

(* ------------------------------------------------------------------ *)
(* Deterministic per-site semantics.                                   *)

(* kill.pre: the worker dies after dequeueing but before the job runs.
   The job is retried invisibly — the client sees a plain success. *)
let kill_pre_retries () =
  with_engine ~jobs:1 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1 + 2;\n" ());
  with_plan "kill.pre@1" (fun () ->
      send engine (parse_line ~doc:"a" ());
      let responses = collect () in
      check_invariant ~what:"kill.pre" engine responses;
      List.iter
        (fun r ->
          match error_code (Json.of_string r) with
          | None -> ()
          | Some c -> Alcotest.failf "kill.pre leaked error %d to a client" c)
        responses);
  Alcotest.(check int) "retried once" 1 (health_int engine "retried");
  Alcotest.(check int) "one supervised restart" 1
    (health_int engine "supervised_restarts");
  Alcotest.(check int) "worker count invariant" 1 (Engine.jobs engine)

(* kill.mid: the worker dies while the job executes.  Retrying would
   repeat side effects, so the client gets -32006, the document is
   quarantined and heals (from committed text) on the next touch, and a
   replacement domain serves that next touch. *)
let kill_mid_crashes_and_heals () =
  with_engine ~jobs:1 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1 + 2;\n" ());
  (* The plan must stay installed until the worker has actually run the
     job: drain inside the plan scope. *)
  with_plan "kill.mid@1" (fun () ->
      send engine (parse_line ~doc:"a" ());
      Engine.drain engine);
  Alcotest.(check (list string))
    "doc quarantined after the crash" [ "a" ]
    (Pool.poisoned (Engine.pool engine));
  (* Only a replacement domain can serve this parse. *)
  send engine (parse_line ~doc:"a" ());
  let responses = collect () in
  check_invariant ~what:"kill.mid" engine responses;
  (match List.map Json.of_string responses with
  | [ _open; crashed; healed ] ->
      Alcotest.(check (option int))
        "crashed parse answers -32006" (Some Server.Protocol.e_worker)
        (error_code crashed);
      Alcotest.(check (option int))
        "post-crash parse succeeds" None (error_code healed)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs));
  Alcotest.(check (list string))
    "healed on touch" []
    (Pool.poisoned (Engine.pool engine));
  Alcotest.(check int) "replacement spawned" 1
    (health_int engine "supervised_restarts");
  Alcotest.(check int) "worker count invariant" 1 (Engine.jobs engine)

(* worker.raise: an exception escapes the handler mid-mutation.  The
   client gets -32603; the session can no longer be trusted, so the
   document quarantines and rebuilds from its last committed text. *)
let worker_raise_quarantines () =
  with_engine ~jobs:0 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1;\n" ());
  send engine (edit_line ~doc:"a" ~pos:4 ~del:1 ~insert:"7" ());
  with_plan "worker.raise@1" (fun () -> send engine (parse_line ~doc:"a" ()));
  Alcotest.(check (list string))
    "quarantined" [ "a" ]
    (Pool.poisoned (Engine.pool engine));
  (* Heal-on-touch rebuilds from the committed text, which includes the
     cleanly-applied edit. *)
  send engine (parse_line ~doc:"a" ());
  let responses = collect () in
  check_invariant ~what:"worker.raise" engine responses;
  (match List.map Json.of_string responses with
  | [ _open; _edit; raised; healed ] ->
      Alcotest.(check (option int))
        "raise answers -32603" (Some (-32603)) (error_code raised);
      Alcotest.(check (option int)) "heal parse ok" None (error_code healed)
  | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs));
  (match Pool.find (Engine.pool engine) "a" with
  | Some e ->
      Alcotest.(check string)
        "rebuilt from committed text (edit survives)" "x = 7;\n"
        (Session.text e.Pool.session)
  | None -> Alcotest.fail "doc a missing");
  Alcotest.(check (list string)) "healed" [] (Pool.poisoned (Engine.pool engine))

(* sink.fail: the response sink throws.  The line is dropped and
   counted; the writer keeps emitting later responses instead of
   wedging behind a locked mutex. *)
let sink_fail_absorbed () =
  with_engine ~jobs:0 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1;\n" ());
  with_plan "sink.fail@2" (fun () ->
      send engine (parse_line ~doc:"a" ());
      send engine (parse_line ~doc:"a" ()));
  send engine (parse_line ~doc:"a" ());
  let responses = collect () in
  Alcotest.(check int)
    "exactly the faulted line is missing"
    (Engine.requests engine - 1)
    (List.length responses);
  Alcotest.(check int) "sink error counted" 1 (health_int engine "sink_errors");
  (* The line AFTER the failed one still came out: req 0,1,3. *)
  Alcotest.(check (list int))
    "ordering progress continues" [ 0; 1; 3 ]
    (List.map (fun r -> req_of (Json.of_string r)) responses)

(* ------------------------------------------------------------------ *)
(* Deadline cancellation is accept-relative.                           *)

let slow_text = Workload.Spec_gen.plain ~lines:400 ~seed:11

(* One worker, pinned for 30ms by a stall fault, while a tiny parse
   with a 1ms deadline waits in the queue.  Under the old
   parse-start-relative deadline the tiny parse would finish clean;
   accept-relative, its deadline expired while queued, so its first
   budget check cancels it through the degradation ladder and it
   answers degraded:true.  (The stall is needed because the scheduler
   round-robins keys one job per dispatch: without it the tiny parse
   jumps ahead of the heavy document's backlog and never queues.) *)
let deadline_counts_queueing () =
  with_engine ~jobs:1 @@ fun engine collect ->
  send engine (open_line ~doc:"slow" ~lang:"c" ~text:"int x;\n" ());
  send engine (open_line ~doc:"tiny" ~lang:"c" ~text:(Workload.Spec_gen.plain ~lines:30 ~seed:3) ());
  Engine.drain engine;
  with_plan "stall=30;stall@1" (fun () ->
      send engine (edit_line ~doc:"slow" ~pos:0 ~del:7 ~insert:slow_text ());
      send engine (parse_line ~doc:"slow" ());
      send engine (parse_line ~deadline_ms:1. ~doc:"tiny" ());
      Engine.drain engine);
  let responses = collect () in
  check_invariant ~what:"deadline" engine responses;
  let tiny_parse =
    List.filter
      (fun r ->
        let j = Json.of_string r in
        match Option.bind (member "result" j) (member "doc") with
        | Some d -> str_of d = "tiny" && member "outcome" (Option.get (member "result" j)) <> None
        | None -> false)
      responses
    |> List.rev |> List.hd
  in
  let outcome =
    Option.get
      (Option.bind (member "result" (Json.of_string tiny_parse))
         (member "outcome"))
  in
  match member "degraded" outcome with
  | Some (Json.Bool true) -> ()
  | j ->
      Alcotest.failf "queued parse was not cancelled: degraded=%s in %s"
        (match j with Some j -> Json.to_line j | None -> "<absent>")
        tiny_parse

(* ------------------------------------------------------------------ *)
(* Overload shedding.                                                  *)

(* A 300ms stall pins the single worker on the first dispatched job
   while the dispatcher floods one document past its queue cap. *)
let per_doc_cap_sheds () =
  with_plan "stall=300;stall@1" @@ fun () ->
  with_engine ~jobs:1 ~max_doc_queue:3 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1;\n" ());
  for i = 1 to 4 do
    send engine (parse_line ~id:(Printf.sprintf "p%d" i) ~doc:"a" ())
  done;
  let responses = collect () in
  check_invariant ~what:"per-doc cap" engine responses;
  let sheds =
    List.filter
      (fun r -> error_code (Json.of_string r) = Some Server.Protocol.e_overloaded)
      responses
  in
  (* open + 2 parses fill the cap of 3; parses 3 and 4 shed. *)
  Alcotest.(check int) "two requests shed" 2 (List.length sheds);
  Alcotest.(check int) "shed counter" 2 (health_int engine "shed")

(* Global backpressure sheds the OLDEST queued parse, not the incoming
   request: the -32007 envelope must carry the first parse's id. *)
let global_cap_sheds_oldest () =
  with_plan "stall=300;stall@1" @@ fun () ->
  with_engine ~jobs:1 ~max_inflight:3 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1;\n" ());
  send engine (parse_line ~id:"first" ~doc:"a" ());
  send engine (parse_line ~id:"second" ~doc:"a" ());
  send engine (parse_line ~id:"third" ~doc:"a" ());
  let responses = collect () in
  check_invariant ~what:"global cap" engine responses;
  let shed_ids =
    List.filter_map
      (fun r ->
        let j = Json.of_string r in
        if error_code j = Some Server.Protocol.e_overloaded then
          Option.map str_of (member "id" j)
        else None)
      responses
  in
  Alcotest.(check (list string)) "oldest parse shed first" [ "first" ] shed_ids

(* ------------------------------------------------------------------ *)
(* Shutdown paths.                                                     *)

let begin_shutdown_closes_admission () =
  with_engine ~jobs:0 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1;\n" ());
  Engine.begin_shutdown engine;
  Alcotest.(check bool) "stopping" true (Engine.stopping engine);
  send engine (parse_line ~doc:"a" ());
  let responses = collect () in
  check_invariant ~what:"-32008" engine responses;
  match List.map Json.of_string responses with
  | [ _open; refused ] ->
      Alcotest.(check (option int))
        "post-shutdown request answers -32008"
        (Some Server.Protocol.e_shutting_down)
        (error_code refused);
      Alcotest.(check (option string))
        "client id still echoed" (Some "a")
        (Option.map str_of (member "id" refused))
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs)

(* Shutdown with queued jobs: everything queued still answers; shutting
   down twice is a no-op; afterwards no worker domains remain. *)
let shutdown_drains_queued () =
  let m = Mutex.create () in
  let buf = ref [] in
  let emit l =
    Mutex.lock m;
    buf := l :: !buf;
    Mutex.unlock m
  in
  let engine = Engine.create ~jobs:2 ~emit () in
  send engine (open_line ~doc:"a" ~lang:"calc" ~text:"x = 1;\n" ());
  send engine (open_line ~doc:"b" ~lang:"calc" ~text:"y = 2;\n" ());
  for _ = 1 to 5 do
    send engine (parse_line ~doc:"a" ());
    send engine (parse_line ~doc:"b" ())
  done;
  Engine.shutdown engine;
  let responses = List.rev !buf in
  check_invariant ~what:"shutdown with queue" engine responses;
  Alcotest.(check int) "no workers left" 0 (Engine.jobs engine);
  (* Idempotent: a second shutdown (and a drain) must return, not hang
     or raise. *)
  Engine.shutdown engine;
  Engine.drain engine;
  Alcotest.(check int)
    "no responses lost or duplicated" 12 (List.length responses)

(* Drain under a hard deadline: a heavy unbudgeted parse is in flight;
   the watchdog fires its cancel flag so the drain completes and the
   parse still answers — degraded — instead of being dropped. *)
let drain_under_deadline () =
  with_engine ~jobs:1 @@ fun engine collect ->
  send engine (open_line ~doc:"a" ~lang:"c" ~text:"int x;\n" ());
  Engine.drain engine;
  send engine (edit_line ~doc:"a" ~pos:0 ~del:7 ~insert:slow_text ());
  send engine (parse_line ~doc:"a" ());
  Engine.drain ~deadline_ms:5. engine;
  let responses = collect () in
  check_invariant ~what:"drain deadline" engine responses;
  let last = Json.of_string (List.nth responses 2) in
  let outcome = Option.bind (member "result" last) (member "outcome") in
  match Option.bind outcome (member "degraded") with
  | Some (Json.Bool true) -> ()
  | _ ->
      (* The parse may legitimately finish under the deadline on a fast
         machine; accept a clean result but never a missing one. *)
      Alcotest.(check (option int))
        "in-flight parse still answered" None (error_code last)

(* ------------------------------------------------------------------ *)
(* Randomized chaos fuzz: >= 100 seeded plans over a multi-domain
   engine.  sink.fail is excluded (it deliberately drops lines, tested
   separately above); everything else fires with seed-derived
   probabilities.                                                      *)

let fuzz_cases = 100

let fuzz_plan seed =
  (* Probabilities in [0, 0.15), derived from the seed — deterministic
     and distinct per case. *)
  let r = ref (seed * 2654435761) in
  let pct () =
    r := ((!r * 1103515245) + 12345) land 0x3FFFFFFF;
    !r mod 15
  in
  Printf.sprintf
    "seed=%d;stall=1;skew=3;kill.pre%%0.%02d;kill.mid%%0.%02d;worker.raise%%0.%02d;stall%%0.%02d;clock.skew%%0.%02d"
    seed (pct ()) (pct ()) (pct ()) (pct ()) (pct ())

let fuzz_conversation engine =
  let docs = [ "d0"; "d1"; "d2" ] in
  List.iteri
    (fun i doc ->
      send engine
        (open_line ~doc ~lang:"calc"
           ~text:(Printf.sprintf "a%d = %d + 2;\n" i i) ()))
    docs;
  for round = 0 to 2 do
    List.iteri
      (fun i doc ->
        send engine
          (edit_line ~doc ~pos:5 ~del:1
             ~insert:(string_of_int ((round + i) mod 10))
             ());
        send engine (parse_line ~doc ()))
      docs
  done;
  send engine (close_line ~doc:"d2");
  send engine
    (obj
       [
         ("id", Json.String "t");
         ("method", Json.String "telemetry");
         ("params", Json.Obj [ ("view", Json.String "health") ]);
       ])

let chaos_fuzz () =
  for case = 1 to fuzz_cases do
    let plan = fuzz_plan case in
    with_plan plan (fun () ->
        with_engine ~jobs:2 (fun engine collect ->
            (* The scheduler clamps to the host's domain budget, so the
               invariant is against the count it actually started with. *)
            let complement = Engine.jobs engine in
            fuzz_conversation engine;
            let responses = collect () in
            check_invariant ~what:(Printf.sprintf "plan %S" plan) engine
              responses;
            (* Killed domains were replaced within the run: the engine
               still reports its full complement. *)
            Alcotest.(check int)
              (Printf.sprintf "plan %S: worker count invariant" plan)
              complement (Engine.jobs engine)))
  done

(* The committed chaos plan (the one @chaos-smoke replays through the
   daemon binary) must uphold the same invariant at the engine level. *)
let committed_plan = "seed=42;stall=2;kill.pre@2;kill.mid@4;worker.raise@6"

let committed_plan_invariant () =
  with_plan committed_plan (fun () ->
      with_engine ~jobs:2 (fun engine collect ->
          let complement = Engine.jobs engine in
          fuzz_conversation engine;
          check_invariant ~what:"committed plan" engine (collect ());
          Alcotest.(check int) "worker count invariant" complement
            (Engine.jobs engine)))

let suite =
  [
    Alcotest.test_case "kill.pre: invisible front-of-queue retry" `Quick
      kill_pre_retries;
    Alcotest.test_case "kill.mid: -32006, quarantine, heal, replacement"
      `Quick kill_mid_crashes_and_heals;
    Alcotest.test_case "worker.raise: -32603 + rebuild from committed text"
      `Quick worker_raise_quarantines;
    Alcotest.test_case "sink.fail: counted, absorbed, ordering continues"
      `Quick sink_fail_absorbed;
    Alcotest.test_case "deadline cancellation counts queueing time" `Quick
      deadline_counts_queueing;
    Alcotest.test_case "per-doc queue cap sheds -32007" `Quick per_doc_cap_sheds;
    Alcotest.test_case "global cap sheds oldest parse first" `Quick
      global_cap_sheds_oldest;
    Alcotest.test_case "begin_shutdown answers -32008" `Quick
      begin_shutdown_closes_admission;
    Alcotest.test_case "shutdown drains queued jobs, idempotent, no leaks"
      `Quick shutdown_drains_queued;
    Alcotest.test_case "drain under hard deadline cancels, never drops"
      `Quick drain_under_deadline;
    Alcotest.test_case "committed chaos plan upholds the invariant" `Quick
      committed_plan_invariant;
    Alcotest.test_case
      (Printf.sprintf "%d randomized seeded plans uphold the invariant"
         fuzz_cases)
      `Quick chaos_fuzz;
  ]
