(* Unit tests for the metrics registry and its JSON layer. *)

module Json = Metrics.Json

(* Registration is process-global and happens once; keep every handle at
   module level like real instrumentation does. *)
let c1 = Metrics.counter "test.c1"
let c2 = Metrics.counter "test.c2"
let t1 = Metrics.timer "test.t1"
let p1 = Metrics.peak "test.p1"
let h1 = Metrics.histogram "test.h1" ~bounds:[| 1.0; 10.0 |]

let duplicate_registration () =
  match Metrics.counter "test.c1" with
  | _ -> Alcotest.fail "duplicate metric name accepted"
  | exception Invalid_argument _ -> ()

(* Regression: [register] used to probe for duplicates before taking
   the registry lock, so two domains racing on one name could both
   succeed and the registry would keep whichever handle lost the
   Hashtbl.replace race.  Race N domains at a single name: exactly one
   must win, the rest must see [Invalid_argument]. *)
let registration_race () =
  let n = 8 in
  let gate = Atomic.make 0 in
  let outcomes =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr gate;
            while Atomic.get gate < n do
              Domain.cpu_relax ()
            done;
            match Metrics.counter "test.registration_race" with
            | _ -> true
            | exception Invalid_argument _ -> false))
    |> List.map Domain.join
  in
  Alcotest.(check int)
    "exactly one registration wins" 1
    (List.length (List.filter Fun.id outcomes))

let counters_and_diff () =
  let before = Metrics.snapshot () in
  Metrics.incr c1;
  Metrics.add c1 4;
  Metrics.incr c2;
  let d = Metrics.diff (Metrics.snapshot ()) before in
  Alcotest.(check int) "c1 delta" 5 (Metrics.count d "test.c1");
  Alcotest.(check int) "c2 delta" 1 (Metrics.count d "test.c2");
  Alcotest.(check int) "absent metric reads 0" 0 (Metrics.count d "test.nope")

let share () =
  let before = Metrics.snapshot () in
  Metrics.add c1 3;
  Metrics.add c2 1;
  let d = Metrics.diff (Metrics.snapshot ()) before in
  Alcotest.(check (float 1e-9)) "share" 75.0
    (Metrics.share d "test.c1" "test.c2");
  Alcotest.(check (float 1e-9)) "share of nothing" 0.0
    (Metrics.share d "test.nope" "test.nada")

let peaks_and_gauge_diff () =
  Metrics.record_peak p1 7;
  let before = Metrics.snapshot () in
  Metrics.record_peak p1 3 (* below the watermark: no effect *);
  let d = Metrics.diff (Metrics.snapshot ()) before in
  (* Gauges keep the later whole-process value rather than subtracting. *)
  Alcotest.(check int) "gauge survives diff" 7 (Metrics.count d "test.p1");
  Metrics.record_peak p1 11;
  let d = Metrics.diff (Metrics.snapshot ()) before in
  Alcotest.(check int) "gauge raised" 11 (Metrics.count d "test.p1")

let timers () =
  let before = Metrics.snapshot () in
  Metrics.time t1 (fun () -> ignore (Sys.opaque_identity (List.init 100 Fun.id)));
  let d = Metrics.diff (Metrics.snapshot ()) before in
  Alcotest.(check int) "one span" 1 (Metrics.span_events d "test.t1");
  if Metrics.span_seconds d "test.t1" < 0. then
    Alcotest.fail "negative span"

let disabled_is_noop () =
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      let before = Metrics.snapshot () in
      Metrics.incr c1;
      Metrics.observe h1 5.0;
      Metrics.stop t1 (Metrics.start ());
      let d = Metrics.diff (Metrics.snapshot ()) before in
      Alcotest.(check int) "counter frozen" 0 (Metrics.count d "test.c1");
      Alcotest.(check int) "timer frozen" 0 (Metrics.span_events d "test.t1"))

let histogram_buckets () =
  let before = Metrics.snapshot () in
  List.iter (Metrics.observe h1) [ 0.5; 5.0; 50.0; 0.2 ];
  let d = Metrics.diff (Metrics.snapshot ()) before in
  match List.assoc_opt "test.h1" d with
  | Some (Metrics.Hist { counts; _ }) ->
      Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1 |] counts
  | _ -> Alcotest.fail "histogram missing from snapshot"

let json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\n\tstring \xe2\x9c\x93");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("whole", Json.Float 3.0);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  let back = Json.of_string (Json.to_string doc) in
  if back <> doc then Alcotest.fail "JSON did not round-trip";
  (match Json.of_string "{\"x\": [1, 2.5, \"\\u0041\"]}" with
  | Json.Obj [ ("x", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "A" ]) ]
    -> ()
  | _ -> Alcotest.fail "hand-written JSON parsed wrong");
  match Json.of_string "{broken" with
  | _ -> Alcotest.fail "malformed JSON accepted"
  | exception Json.Parse _ -> ()

let snapshot_to_json () =
  let before = Metrics.snapshot () in
  Metrics.incr c1;
  let d = Metrics.diff (Metrics.snapshot ()) before in
  let j = Metrics.to_json d in
  match Option.bind (Json.member "test.c1" j) Json.to_int with
  | Some 1 -> ()
  | _ -> Alcotest.fail "to_json lost the counter"

let suite =
  [
    Alcotest.test_case "duplicate registration rejected" `Quick
      duplicate_registration;
    Alcotest.test_case "registration race has one winner" `Quick
      registration_race;
    Alcotest.test_case "counters and diff" `Quick counters_and_diff;
    Alcotest.test_case "share" `Quick share;
    Alcotest.test_case "peaks survive diff" `Quick peaks_and_gauge_diff;
    Alcotest.test_case "timers" `Quick timers;
    Alcotest.test_case "disabled is a no-op" `Quick disabled_is_noop;
    Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
    Alcotest.test_case "json round-trip" `Quick json_roundtrip;
    Alcotest.test_case "snapshot to_json" `Quick snapshot_to_json;
  ]
