(* Unit tests for the incremental query engine (lib/query) and its
   first full-scale consumer, the semantic diagnostics layer.

   Engine invariants under test:
   - revision stamps: inputs bump the revision only when the value
     actually changes, and derived cells recompute only past a changed
     dependency;
   - dependency diffing: a cell revalidates against the dependencies of
     its *last* computation, so a conditional read dropped from the
     dep set stops invalidating;
   - early cutoff: a recomputed dependency whose value came out equal
     is backdated and its dependents validate clean;
   - cycle detection: a self-referential fetch raises [Cycle] with the
     offending path instead of looping;
   - dead-cell GC: cells unreachable from the roots fetched since the
     last collect are swept;
   - ownership: one engine is single-owner state — concurrent entry
     from other domains raises [Busy], re-entrant use by the owning
     computation is fine. *)

let int_in : int Query.input = Query.input ~name:"t.int" ()
let int_in2 : int Query.input = Query.input ~name:"t.int2" ()

let get t i k =
  match Query.peek t i k with Some v -> v | None -> Alcotest.fail "unset input"

(* double(k) = 2 * input(k) *)
let double =
  Query.define ~name:"t.double" (fun t k ->
      2 * Option.value (Query.read t int_in k) ~default:0)

(* parity(k) = double(k) mod 2 — constant, so edits to the input
   recompute [double] but early cutoff shields [parity]'s dependents. *)
let parity =
  Query.define ~name:"t.parity" (fun t k -> Query.fetch t double k mod 2)

let test_revision_stamps () =
  let t = Query.create () in
  let r0 = Query.revision t in
  Query.set t int_in 1 10;
  let r1 = Query.revision t in
  Alcotest.(check bool) "set bumps revision" true (r1 > r0);
  Query.set t int_in 1 10;
  Alcotest.(check int) "equal set is a no-op" r1 (Query.revision t);
  Alcotest.(check int) "fetch" 20 (Query.fetch t double 1);
  let s = Query.stats t in
  Alcotest.(check int) "one compute" 1 s.Query.computes;
  Alcotest.(check int) "cached refetch" 20 (Query.fetch t double 1);
  Alcotest.(check int) "no recompute" 1 (Query.stats t).Query.computes;
  Query.set t int_in 1 11;
  Alcotest.(check int) "recomputed after change" 22 (Query.fetch t double 1);
  Alcotest.(check int) "exactly one more compute" 2
    (Query.stats t).Query.computes

(* sel reads int_in(0) to pick which of int_in(1)/int_in(2) to read:
   after computing with int_in(0)=1, changing int_in(2) must not
   invalidate it (it is no longer a dependency). *)
let sel =
  Query.define ~name:"t.sel" (fun t _ ->
      let which = Option.value (Query.read t int_in 0) ~default:1 in
      Option.value (Query.read t int_in which) ~default:0)

let test_dependency_diffing () =
  let t = Query.create () in
  Query.set t int_in 0 1;
  Query.set t int_in 1 100;
  Query.set t int_in 2 200;
  Alcotest.(check int) "reads branch 1" 100 (Query.fetch t sel 7);
  let c0 = (Query.stats t).Query.computes in
  Query.set t int_in 2 222;
  Alcotest.(check int) "unread branch ignored" 100 (Query.fetch t sel 7);
  Alcotest.(check int) "no recompute" c0 (Query.stats t).Query.computes;
  Query.set t int_in 0 2;
  Alcotest.(check int) "switched branch" 222 (Query.fetch t sel 7);
  Query.set t int_in 1 111;
  Alcotest.(check int) "old branch now ignored" 222 (Query.fetch t sel 7);
  Alcotest.(check int) "one recompute for the switch" (c0 + 1)
    (Query.stats t).Query.computes

let dep_on_parity =
  Query.define ~name:"t.dep_on_parity" (fun t k -> Query.fetch t parity k + 5)

let test_early_cutoff () =
  let t = Query.create () in
  Query.set t int_in 3 4;
  Alcotest.(check int) "initial" 5 (Query.fetch t dep_on_parity 3);
  let s0 = Query.stats t in
  Query.set t int_in 3 6;
  Alcotest.(check int) "same value" 5 (Query.fetch t dep_on_parity 3);
  let s1 = Query.stats t in
  (* double and parity recompute; parity's value is equal, so it is
     backdated and dep_on_parity validates clean. *)
  Alcotest.(check int) "two recomputes" (s0.Query.computes + 2)
    s1.Query.computes;
  Alcotest.(check bool) "backdated fired" true
    (s1.Query.backdated > s0.Query.backdated)

let cyc_a_ref = ref None

let cyc_b =
  Query.define ~name:"t.cyc_b" (fun t k ->
      match !cyc_a_ref with
      | Some d -> Query.fetch t d k
      | None -> 0)

let cyc_a = Query.define ~name:"t.cyc_a" (fun t k -> Query.fetch t cyc_b k)
let () = cyc_a_ref := Some cyc_a

let test_cycle_detection () =
  let t = Query.create () in
  match Query.fetch t cyc_a 1 with
  | _ -> Alcotest.fail "cycle not detected"
  | exception Query.Cycle path ->
      let names = List.map (fun c -> c.Query.query) path in
      Alcotest.(check bool) "path names the cycle" true
        (List.mem "t.cyc_a" names && List.mem "t.cyc_b" names)

let test_gc () =
  let t = Query.create () in
  Query.set t int_in 1 1;
  Query.set t int_in 2 2;
  ignore (Query.fetch t double 1);
  ignore (Query.fetch t double 2);
  let live0 = Query.cells t in
  (* Next "run" only uses key 1: key 2's cells are garbage. *)
  ignore (Query.collect t);
  ignore (Query.fetch t double 1);
  let dead = Query.collect t in
  Alcotest.(check bool) "swept the dead chain" true (dead >= 1);
  Alcotest.(check bool) "table shrank" true (Query.cells t < live0);
  (* The collected cell reappears on demand (input must be re-set). *)
  Query.set t int_in 2 20;
  Alcotest.(check int) "recreated" 40 (Query.fetch t double 2)

(* Single-owner contract: the engine serialises entry per domain; a
   domain that loses the race gets [Busy] rather than corrupting cell
   state.  A deterministic schedule: one domain holds the engine inside
   a compute (via a latch), others must observe [Busy]. *)
let latch_in : int Query.input = Query.input ~name:"t.latch" ()

let slow_flag = Atomic.make false
let release = Atomic.make false

let slow =
  Query.define ~name:"t.slow" (fun t k ->
      Atomic.set slow_flag true;
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done;
      Option.value (Query.read t latch_in k) ~default:0)

let test_domain_safety () =
  let t = Query.create () in
  Query.set t latch_in 1 7;
  Atomic.set slow_flag false;
  Atomic.set release false;
  let owner = Domain.spawn (fun () -> Query.fetch t slow 1) in
  while not (Atomic.get slow_flag) do
    Domain.cpu_relax ()
  done;
  (* Three contenders while the owner domain sits inside the compute:
     every one must be refused. *)
  let contenders =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            match Query.fetch t double i with
            | _ -> false
            | exception Query.Busy -> true))
  in
  let refused = List.map Domain.join contenders in
  Atomic.set release true;
  Alcotest.(check int) "owner completed" 7 (Domain.join owner);
  List.iter (Alcotest.(check bool) "contender got Busy" true) refused;
  (* The engine is reusable after contention. *)
  Query.set t int_in 9 9;
  Alcotest.(check int) "still consistent" 18 (Query.fetch t double 9)

(* ------------------------------------------------------------------ *)
(* Diagnostics layer on real sessions.                                 *)

module Session = Iglr.Session
module Language = Languages.Language
module Diag = Semantics.Diag
module Typedefs = Semantics.Typedefs

let parse_session lang text =
  let s, outcome =
    Session.create ~table:(Language.table lang) ~lexer:(Language.lexer lang)
      text
  in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "fixture rejected");
  s

let codes r = List.map (fun d -> d.Diag.d_code) r.Diag.diags

let test_diag_calc () =
  let lang = Languages.Registry.find "calc" |> Option.get in
  let s = parse_session lang "x = 1 ; y = x + 2 ; z = 3 ; w = q ;" in
  let d = Diag.create lang.Language.grammar in
  let r = Diag.run d (Session.root s) in
  (* z is assigned but never read; q is never assigned; w and y are
     also unused but x is read. *)
  Alcotest.(check bool) "unused reported" true
    (List.mem "unused-binding" (codes r));
  Alcotest.(check bool) "unbound reported" true
    (List.mem "unbound-name" (codes r));
  Alcotest.(check int) "four bindings" 4 (List.length r.Diag.bindings);
  (* Types: the three literal assignments are int; [w = q] has an
     unbound rhs and stays unknown. *)
  let names = List.map (fun (_, ty) -> Diag.ty_name ty) r.Diag.types in
  Alcotest.(check int) "int count" 3
    (List.length (List.filter (( = ) "int") names));
  Alcotest.(check int) "unknown count" 1
    (List.length (List.filter (( = ) "?") names))

let test_diag_calc_division_types () =
  let lang = Languages.Registry.find "calc" |> Option.get in
  let s = parse_session lang "x = 1 / 2 ; y = x + 1 ; y ;" in
  let d = Diag.create lang.Language.grammar in
  let r = Diag.run d (Session.root s) in
  (* x : float (true division), so x + 1 mixes float and int. *)
  Alcotest.(check bool) "mismatch reported" true
    (List.mem "type-mismatch" (codes r));
  let x = List.find (fun b -> b.Diag.b_name = "x") r.Diag.bindings in
  Alcotest.(check string) "x is float" "float" (Diag.ty_name x.Diag.b_ty)

let test_diag_calc_use_before () =
  let lang = Languages.Registry.find "calc" |> Option.get in
  let s = parse_session lang "y = x + 1 ; x = 2 ; y ;" in
  let d = Diag.create lang.Language.grammar in
  let r = Diag.run d (Session.root s) in
  Alcotest.(check bool) "use-before-decl reported" true
    (List.mem "use-before-decl" (codes r))

let c_lang () = Languages.Registry.find "c" |> Option.get

(* Run the C subset's semantic disambiguation before analysing:
   typedef-induced choices must be selected for the walker. *)
let analyze_c s d tds =
  Typedefs.on_select tds (Diag.touch d);
  ignore (Typedefs.analyze tds (Session.root s));
  Diag.run d ~typedefs:(Typedefs.global_typedefs tds) (Session.root s)

let test_diag_clike () =
  let lang = c_lang () in
  let text =
    "typedef int t ; t g ; int unused_g ; \
     int f ( ) { int u ; g = 1 ; return g ; } \
     int main ( ) { return f ( ) ; }"
  in
  let s = parse_session lang text in
  let d = Diag.create lang.Language.grammar in
  let tds = Typedefs.create ~policy:Semantics.Typedefs.Namespace_only lang.Language.grammar in
  let r = analyze_c s d tds in
  let unused =
    List.filter (fun dg -> dg.Diag.d_code = "unused-binding") r.Diag.diags
  in
  (* unused_g (global), u (local) and main (never called) are unused;
     t, g and f are used. *)
  let mentions name =
    List.exists
      (fun dg ->
        let re = Str.regexp_string (" " ^ name ^ " ") in
        (try ignore (Str.search_forward re (" " ^ dg.Diag.d_message ^ " ") 0); true
         with Not_found -> false))
      unused
  in
  Alcotest.(check bool) "unused_g flagged" true (mentions "unused_g");
  Alcotest.(check bool) "u flagged" true (mentions "u");
  Alcotest.(check bool) "t not flagged" false (mentions "t");
  Alcotest.(check bool) "g not flagged" false (mentions "g");
  Alcotest.(check bool) "f not flagged" false (mentions "f");
  Alcotest.(check (list string)) "typedefs" [ "t" ] r.Diag.typedefs

let test_diag_clike_mismatch_and_ubd () =
  let lang = c_lang () in
  let text =
    "char c ; int f ( ) { c = 1 ; return later ; } int later ; \
     int m ( ) { return later ; }"
  in
  let s = parse_session lang text in
  let d = Diag.create lang.Language.grammar in
  let tds = Typedefs.create ~policy:Semantics.Typedefs.Namespace_only lang.Language.grammar in
  let r = analyze_c s d tds in
  Alcotest.(check bool) "char/int mismatch" true
    (List.mem "type-mismatch" (codes r));
  Alcotest.(check bool) "use before decl across items" true
    (List.mem "use-before-decl" (codes r))

(* The incremental contract end to end: an edit to one statement leaves
   every other item's cells validating clean. *)
let test_diag_incremental_reuse () =
  let lang = Languages.Registry.find "calc" |> Option.get in
  let text = "a = 1 ; b = 2 ; c = 3 ; d = 4 ; e = 5 ; a ; b ; c ; d ; e ;" in
  let s = parse_session lang text in
  let d = Diag.create lang.Language.grammar in
  Session.on_commit s (fun ~watermark root -> Diag.commit d ~watermark root);
  let r0 = Diag.run d (Session.root s) in
  let cells = Query.cells (Diag.engine d) in
  Alcotest.(check bool) "cells populated" true (cells > 10);
  (* Replace the literal in one statement. *)
  let pos = String.index text '2' in
  Session.edit s ~pos ~del:1 ~insert:"7";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "edit broke the parse");
  let c0 = (Query.stats (Diag.engine d)).Query.computes in
  let r1 = Diag.run d (Session.root s) in
  let recomputed = (Query.stats (Diag.engine d)).Query.computes - c0 in
  Alcotest.(check bool) "only the edited item recomputed" true
    (recomputed <= 4);
  Alcotest.(check bool) "most cells reused" true
    (recomputed * 10 < Query.cells (Diag.engine d));
  (* And the result matches a from-scratch analysis. *)
  let s2 = parse_session lang (Session.text s) in
  let d2 = Diag.create lang.Language.grammar in
  let r2 = Diag.run d2 (Session.root s2) in
  Alcotest.(check string) "agrees with scratch" (Diag.render r2)
    (Diag.render r1);
  Alcotest.(check bool) "edit actually changed the result" true
    (Diag.render r0 <> Diag.render r1
    || String.length (Diag.render r0) = String.length (Diag.render r1))

let suite =
  [
    Alcotest.test_case "revision stamps" `Quick test_revision_stamps;
    Alcotest.test_case "dependency diffing" `Quick test_dependency_diffing;
    Alcotest.test_case "early cutoff backdates" `Quick test_early_cutoff;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "dead-cell GC" `Quick test_gc;
    Alcotest.test_case "single-owner domain safety" `Quick test_domain_safety;
    Alcotest.test_case "calc diagnostics" `Quick test_diag_calc;
    Alcotest.test_case "calc division types" `Quick
      test_diag_calc_division_types;
    Alcotest.test_case "calc use-before-decl" `Quick test_diag_calc_use_before;
    Alcotest.test_case "clike scope and unused" `Quick test_diag_clike;
    Alcotest.test_case "clike mismatch and forward use" `Quick
      test_diag_clike_mismatch_and_ubd;
    Alcotest.test_case "incremental reuse across edits" `Quick
      test_diag_incremental_reuse;
  ]
