(* Domain-level stress for the iglrd engine.

   The engine promises two orderings: requests for one document execute
   in submission order, and independent documents may execute on
   different worker domains at once.  The stress test drives N documents
   through interleaved random edit scripts on a multi-domain engine and
   demands each final dag be sexp-identical to a single-threaded Session
   replaying the same script — any cross-document interference (shared
   table corruption, torn node ids, misrouted jobs) shows up as a
   divergent tree.

   The starvation test floods one document with garbage tokens under a
   tight per-request deadline: the pathological document must degrade by
   itself (structured recovered/degraded outcomes) while its siblings
   keep parsing cleanly — per-request budgets are per-session state, so
   a budget on one document must never throttle another. *)

module Json = Metrics.Json
module Engine = Server.Engine
module Session = Iglr.Session
module Glr = Iglr.Glr
module Language = Languages.Language
module Edit_gen = Workload.Edit_gen

let obj fields = Json.to_line (Json.Obj fields)

(* Collected responses under a mutex: [emit] runs on worker domains. *)
let with_engine ~jobs f =
  let m = Mutex.create () in
  let buf = ref [] in
  let emit l =
    Mutex.lock m;
    buf := l :: !buf;
    Mutex.unlock m
  in
  let engine = Engine.create ~jobs ~emit () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      f engine (fun () ->
          Engine.drain engine;
          List.rev !buf))

let send engine line = Engine.handle_line engine line

let open_line ~doc ~lang ~text =
  obj
    [
      ("id", Json.String doc);
      ("method", Json.String "open");
      ( "params",
        Json.Obj
          [
            ("doc", Json.String doc);
            ("lang", Json.String lang);
            ("text", Json.String text);
          ] );
    ]

let edit_line ~doc (e : Edit_gen.edit) =
  obj
    [
      ("id", Json.String doc);
      ("method", Json.String "edit");
      ( "params",
        Json.Obj
          [
            ("doc", Json.String doc);
            ( "edits",
              Json.List
                [
                  Json.Obj
                    [
                      ("pos", Json.Int e.Edit_gen.e_pos);
                      ("del", Json.Int e.Edit_gen.e_del);
                      ("insert", Json.String e.Edit_gen.e_insert);
                    ];
                ] );
          ] );
    ]

let parse_line ?budget ?(timing = false) ~doc () =
  obj
    [
      ("id", Json.String doc);
      ("method", Json.String "parse");
      ( "params",
        Json.Obj
          ([ ("doc", Json.String doc) ]
          @ (match budget with Some b -> [ ("budget", Json.Obj b) ] | None -> [])
          @ if timing then [ ("timing", Json.Bool true) ] else []) );
    ]

let session_of engine doc =
  match Server.Pool.find (Engine.pool engine) doc with
  | Some e -> e.Server.Pool.session
  | None -> Alcotest.failf "doc %s missing from the pool" doc

let sexp lang root = Parsedag.Pp.to_sexp lang.Language.grammar root

(* ------------------------------------------------------------------ *)
(* N documents x interleaved random scripts, multi-domain engine vs
   single-threaded oracle.                                             *)

let docs =
  (* Mixed languages so the shared-table path is exercised across
     domains, not just across documents. *)
  List.init 8 (fun i ->
      let name = Printf.sprintf "doc%d" i in
      if i mod 2 = 0 then
        ( name,
          "calc",
          Languages.Calc.language,
          String.concat "\n"
            (List.init 10 (fun k ->
                 Printf.sprintf "v%d = (%d + 2) * x%d / 3;" k (10 + k) k)) )
      else (name, "c", Languages.C_subset.language, Workload.Spec_gen.plain ~lines:20 ~seed:(100 + i)))

let stress () =
  with_engine ~jobs:4 @@ fun engine collect ->
  List.iter
    (fun (doc, lang, _, base) -> send engine (open_line ~doc ~lang ~text:base))
    docs;
  (* Interleave the scripts round-robin: at every step each document
     gets one edit and a reparse, so up to 8 reparses are in flight
     across the worker domains at once. *)
  let scripts =
    List.mapi
      (fun i (doc, _, _, base) ->
        (doc, Edit_gen.random_script ~seed:(7 * i + 1) ~count:6 base))
      docs
  in
  for step = 0 to 5 do
    List.iter
      (fun (doc, script) ->
        send engine (edit_line ~doc (List.nth script step));
        send engine (parse_line ~doc ()))
      scripts
  done;
  let responses = collect () in
  (* Zero dropped responses: one per request, all envelopes. *)
  Alcotest.(check int)
    "one response per request"
    (Engine.requests engine)
    (List.length responses);
  List.iter
    (fun r ->
      let j = Json.of_string r in
      match (Json.member "result" j, Json.member "error" j) with
      | Some _, None -> ()
      | None, Some e ->
          Alcotest.failf "stress request failed: %s" (Json.to_line e)
      | _ -> Alcotest.failf "response is not an envelope: %s" r)
    responses;
  (* Each concurrent session's final dag equals a single-threaded
     Session replaying the same script. *)
  List.iter
    (fun (doc, lang_name, lang, base) ->
      let script = List.assoc doc scripts in
      let oracle, outcome0 =
        Session.create ~table:(Language.table lang)
          ~lexer:(Language.lexer lang) base
      in
      (match outcome0 with
      | Session.Parsed _ -> ()
      | Session.Recovered _ ->
          Alcotest.failf "oracle base for %s rejected" doc);
      List.iter
        (fun (e : Edit_gen.edit) ->
          Session.edit oracle ~pos:e.Edit_gen.e_pos ~del:e.Edit_gen.e_del
            ~insert:e.Edit_gen.e_insert;
          ignore (Session.reparse oracle))
        script;
      let concurrent = session_of engine doc in
      Alcotest.(check string)
        (Printf.sprintf "%s (%s) text = oracle" doc lang_name)
        (Session.text oracle) (Session.text concurrent);
      Alcotest.(check string)
        (Printf.sprintf "%s (%s) dag = oracle" doc lang_name)
        (sexp lang (Session.root oracle))
        (sexp lang (Session.root concurrent)))
    docs

(* ------------------------------------------------------------------ *)
(* Budget starvation: one pathological document under a tight deadline
   degrades alone; its siblings stay clean and fast.                   *)

let starvation () =
  with_engine ~jobs:4 @@ fun engine collect ->
  let sibling i = Printf.sprintf "sib%d" i in
  for i = 0 to 6 do
    send engine
      (open_line ~doc:(sibling i) ~lang:"calc"
         ~text:
           (String.concat "\n"
              (List.init 20 (fun k -> Printf.sprintf "s%d = %d + %d;" k i k))))
  done;
  send engine (open_line ~doc:"victim" ~lang:"calc" ~text:"1;");
  (* Garbage-token flood: thousands of tokens that can never reduce, so
     every isolation attempt has work to drown in. *)
  let garbage = String.concat " " (List.init 2000 (fun _ -> ") (")) in
  send engine
    (edit_line ~doc:"victim"
       { Edit_gen.e_pos = 0; e_del = 0; e_insert = garbage });
  send engine
    (parse_line ~doc:"victim"
       ~budget:[ ("deadline_ms", Json.Float 5.) ]
       ());
  for i = 0 to 6 do
    let doc = sibling i in
    (* First line is "s0 = <i> + 0;": replace the RHS digit at byte 5. *)
    send engine
      (edit_line ~doc { Edit_gen.e_pos = 5; e_del = 1; e_insert = "9" });
    send engine (parse_line ~doc ~timing:true ())
  done;
  let responses = collect () in
  let victim_status = ref "" and sibling_parses = ref 0 in
  List.iter
    (fun r ->
      let j = Json.of_string r in
      match Json.member "result" j with
      | None -> Alcotest.failf "starvation request failed: %s" r
      | Some res -> (
          match Json.member "outcome" res with
          | None -> ()
          | Some outcome ->
              let doc =
                Option.get (Option.bind (Json.member "doc" res) Json.to_str)
              in
              let status =
                Option.get
                  (Option.bind (Json.member "status" outcome) Json.to_str)
              in
              (* Last victim outcome wins: the open's clean parse comes
                 first, the budgeted flood parse after it. *)
              if doc = "victim" then victim_status := status
              else if doc <> "victim" && Json.member "ms" res <> None then begin
                incr sibling_parses;
                Alcotest.(check string)
                  (doc ^ " stays clean") "parsed" status;
                let ms =
                  Option.get
                    (Option.bind (Json.member "ms" res) Json.to_float)
                in
                (* Generous bound: a sibling reparse is a one-token edit
                   on a small document; seconds would mean the victim's
                   flood leaked into a sibling's budget or worker. *)
                if ms > 2000. then
                  Alcotest.failf "%s reparse took %.1fms under starvation"
                    doc ms
              end))
    responses;
  Alcotest.(check string) "victim degraded alone" "recovered" !victim_status;
  Alcotest.(check int) "all siblings reparsed" 7 !sibling_parses

(* Deterministic budget degradation: a whole-document rewrite under a
   tiny max_nodes budget must exhaust during the main parse and surface
   degraded=true, and the per-request budget must not stick to the
   session — the follow-up unbudgeted parse runs clean. *)
let budget_degrades_deterministically () =
  with_engine ~jobs:0 @@ fun engine collect ->
  send engine (open_line ~doc:"d" ~lang:"c" ~text:"int f () { int i; }\n");
  send engine
    (edit_line ~doc:"d"
       {
         Edit_gen.e_pos = 0;
         e_del = String.length "int f () { int i; }\n";
         e_insert = Workload.Spec_gen.plain ~lines:40 ~seed:5;
       });
  send engine
    (parse_line ~doc:"d" ~budget:[ ("max_nodes", Json.Int 8) ] ());
  send engine (parse_line ~doc:"d" ());
  match List.map Json.of_string (collect ()) with
  | [ _open; _edit; budgeted; unbudgeted ] ->
      let outcome j =
        Option.get
          (Option.bind (Json.member "result" j) (Json.member "outcome"))
      in
      let b = outcome budgeted in
      Alcotest.(check string)
        "budgeted parse recovered" "recovered"
        (Option.get (Option.bind (Json.member "status" b) Json.to_str));
      (match Json.member "degraded" b with
      | Some (Json.Bool true) -> ()
      | j ->
          Alcotest.failf "expected degraded=true, got %s"
            (match j with Some j -> Json.to_line j | None -> "<absent>"));
      let u = outcome unbudgeted in
      Alcotest.(check string)
        "budget does not stick to the session" "parsed"
        (Option.get (Option.bind (Json.member "status" u) Json.to_str))
  | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs)

(* Session ownership: re-entrant use raises Busy instead of corrupting
   single-owner state — the contract the scheduler's per-document
   ordering is certified against. *)
let session_busy () =
  let lang = Languages.Calc.language in
  let s, _ =
    Session.create ~table:(Language.table lang) ~lexer:(Language.lexer lang)
      "1;"
  in
  Session.set_on_parse s (fun _ -> ignore (Session.reparse s));
  Session.edit s ~pos:0 ~del:1 ~insert:"2";
  match Session.reparse s with
  | exception Session.Busy -> ()
  | _ -> Alcotest.fail "re-entrant reparse did not raise Busy"

let suite =
  [
    Alcotest.test_case "8 docs x interleaved edits = oracle replay" `Quick
      stress;
    Alcotest.test_case "budget starvation degrades the victim alone" `Quick
      starvation;
    Alcotest.test_case "max_nodes budget degrades deterministically" `Quick
      budget_degrades_deterministically;
    Alcotest.test_case "re-entrant session use raises Busy" `Quick
      session_busy;
  ]
