(* Tests for the parse-dag substrate: nodes, traversal cursors, stats,
   epsilon unsharing, printing (lib/dag). *)

module Node = Parsedag.Node
module Traverse = Parsedag.Traverse
module Stats = Parsedag.Stats
module Unshare = Parsedag.Unshare

let term text = Node.make_term ~term:1 ~text ~trivia:"" ~lex_la:0

let small_tree () =
  (* root -> [bos; P(a b); eos] with P a two-kid production node. *)
  let a = term "a" and b = term "b" in
  let p = Node.make_prod ~prod:0 ~state:3 [| a; b |] in
  let root =
    Node.make_root [| Node.make_bos (); p; Node.make_eos ~trailing:"" |]
  in
  Node.commit root;
  (root, p, a, b)

let test_token_counts () =
  let root, p, a, _ = small_tree () in
  Alcotest.(check int) "terminal count" 1 (Node.token_count a);
  Alcotest.(check int) "prod count" 2 (Node.token_count p);
  Alcotest.(check int) "root count" 2 (Node.token_count root)

let test_yield () =
  let a = Node.make_term ~term:1 ~text:"x" ~trivia:" " ~lex_la:0 in
  let b = Node.make_term ~term:1 ~text:"y" ~trivia:"\t" ~lex_la:0 in
  let p = Node.make_prod ~prod:0 ~state:0 [| a; b |] in
  let root =
    Node.make_root [| Node.make_bos (); p; Node.make_eos ~trailing:"\n" |]
  in
  Alcotest.(check string) "yield includes trivia" " x\ty\n"
    (Node.text_yield root)

let test_mark_and_commit () =
  let root, p, a, _ = small_tree () in
  Node.mark_changed a;
  Alcotest.(check bool) "leaf changed" true a.Node.changed;
  Alcotest.(check bool) "parent nested" true p.Node.nested;
  Alcotest.(check bool) "root nested" true root.Node.nested;
  Node.commit root;
  Alcotest.(check bool) "flags cleared" false (Node.has_changes a);
  Alcotest.(check bool) "root clean" false (Node.has_changes root);
  Alcotest.(check bool) "parents restored" true
    (match a.Node.parent with Some x -> x == p | None -> false)

let test_choice_invariants () =
  (try
     ignore (Node.make_choice ~nt:0 [| term "x" |]);
     Alcotest.fail "choice with one alternative"
   with Invalid_argument _ -> ());
  let a = term "x" in
  let alt1 = Node.make_prod ~prod:0 ~state:0 [| a |] in
  let alt2 = Node.make_prod ~prod:1 ~state:0 [| a |] in
  let c = Node.make_choice ~nt:0 [| alt1; alt2 |] in
  Alcotest.(check int) "choice counts one alternative's tokens" 1
    (Node.token_count c);
  let root =
    Node.make_root [| Node.make_bos (); c; Node.make_eos ~trailing:"" |]
  in
  Node.commit root;
  (* Shared terminal ends up with the first alternative as parent. *)
  Alcotest.(check bool) "shared terminal parent = first alt" true
    (match a.Node.parent with Some x -> x == alt1 | None -> false)

let test_cursor_walk () =
  let a = term "a" and b = term "b" and c = term "c" in
  let p = Node.make_prod ~prod:0 ~state:0 [| a; b |] in
  let root =
    Node.make_root [| Node.make_bos (); p; c; Node.make_eos ~trailing:"" |]
  in
  Node.commit root;
  let cur = Traverse.cursor_at root in
  Alcotest.(check bool) "starts at p" true (Traverse.current cur == p);
  Traverse.descend cur;
  Alcotest.(check bool) "descend to a" true (Traverse.current cur == a);
  Traverse.advance cur;
  Alcotest.(check bool) "advance to b" true (Traverse.current cur == b);
  Traverse.advance cur;
  Alcotest.(check bool) "climb out to c" true (Traverse.current cur == c);
  Traverse.advance cur;
  (match (Traverse.current cur).Node.kind with
  | Node.Eos _ -> ()
  | _ -> Alcotest.fail "expected eos");
  Alcotest.check_raises "advance past eos"
    (Invalid_argument "Traverse.advance: past eos") (fun () ->
      Traverse.advance cur)

let test_cursor_choice () =
  (* Cursor must not visit the second alternative of a choice. *)
  let a = term "a" in
  let alt1 = Node.make_prod ~prod:0 ~state:0 [| a |] in
  let alt2 = Node.make_prod ~prod:1 ~state:0 [| a |] in
  let c = Node.make_choice ~nt:0 [| alt1; alt2 |] in
  let after = term "z" in
  let root =
    Node.make_root [| Node.make_bos (); c; after; Node.make_eos ~trailing:"" |]
  in
  Node.commit root;
  let cur = Traverse.cursor_at root in
  Traverse.descend cur;
  (* into alt1 *)
  Alcotest.(check bool) "first alternative" true (Traverse.current cur == alt1);
  Traverse.descend cur;
  Alcotest.(check bool) "terminal" true (Traverse.current cur == a);
  Traverse.advance cur;
  Alcotest.(check bool) "skips second alternative" true
    (Traverse.current cur == after)

let test_cursor_epsilon () =
  let eps = Node.make_prod ~prod:0 ~state:0 [||] in
  let z = term "z" in
  let root =
    Node.make_root [| Node.make_bos (); eps; z; Node.make_eos ~trailing:"" |]
  in
  Node.commit root;
  let cur = Traverse.cursor_at root in
  Alcotest.(check bool) "on epsilon" true (Traverse.current cur == eps);
  (* Descending an epsilon subtree skips it. *)
  Traverse.descend cur;
  Alcotest.(check bool) "skipped to z" true (Traverse.current cur == z);
  (* peek_terminal from an epsilon current finds the following terminal. *)
  let cur2 = Traverse.cursor_at root in
  Alcotest.(check bool) "peek over epsilon" true
    (Traverse.peek_terminal cur2 == z)

let test_stats_choice_overhead () =
  let a = term "a" in
  let alt1 = Node.make_prod ~prod:0 ~state:0 [| a |] in
  let alt2 = Node.make_prod ~prod:1 ~state:0 [| a |] in
  let c = Node.make_choice ~nt:0 [| alt1; alt2 |] in
  let root =
    Node.make_root [| Node.make_bos (); c; Node.make_eos ~trailing:"" |]
  in
  let m = Stats.measure root in
  Alcotest.(check int) "one choice" 1 m.Stats.choice_nodes;
  Alcotest.(check int) "two alternatives" 2 m.Stats.choice_alts;
  Alcotest.(check bool) "dag bigger than tree" true
    (m.Stats.dag_words > m.Stats.tree_words);
  Alcotest.(check bool) "positive overhead" true
    (Stats.space_overhead_pct m > 0.);
  (* A plain tree has zero overhead. *)
  let root2, _, _, _ = small_tree () in
  let m2 = Stats.measure root2 in
  Alcotest.(check (float 0.0001)) "no ambiguity, no overhead" 0.0
    (Stats.space_overhead_pct m2)

let test_unshare () =
  let eps = Node.make_prod ~prod:0 ~state:0 [||] in
  (* The same ε node appears under two parents: over-sharing. *)
  let p1 = Node.make_prod ~prod:1 ~state:0 [| eps; term "x" |] in
  let p2 = Node.make_prod ~prod:1 ~state:0 [| eps; term "y" |] in
  let top = Node.make_prod ~prod:2 ~state:0 [| p1; p2 |] in
  let root =
    Node.make_root [| Node.make_bos (); top; Node.make_eos ~trailing:"" |]
  in
  let duplicated = Unshare.run root in
  Alcotest.(check int) "one duplication" 1 duplicated;
  Alcotest.(check bool) "instances now distinct" true
    (p1.Node.kids.(0) != p2.Node.kids.(0));
  Alcotest.(check bool) "structure preserved" true
    (Node.structural_equal p1.Node.kids.(0) p2.Node.kids.(0))

let test_structural_equal () =
  let t1 = term "x" and t2 = term "x" in
  Alcotest.(check bool) "equal terminals" true (Node.structural_equal t1 t2);
  let t3 = Node.make_term ~term:1 ~text:"x" ~trivia:" " ~lex_la:0 in
  Alcotest.(check bool) "trivia matters" false (Node.structural_equal t1 t3);
  let p1 = Node.make_prod ~prod:0 ~state:1 [| term "a" |] in
  let p2 = Node.make_prod ~prod:0 ~state:9 [| term "a" |] in
  Alcotest.(check bool) "states ignored" true (Node.structural_equal p1 p2);
  let p3 = Node.make_prod ~prod:1 ~state:1 [| term "a" |] in
  Alcotest.(check bool) "productions matter" false (Node.structural_equal p1 p3)

let test_to_dot () =
  let a = term "x" in
  let alt1 = Node.make_prod ~prod:0 ~state:0 [| a |] in
  let alt2 = Node.make_prod ~prod:1 ~state:0 [| a |] in
  let c = Node.make_choice ~nt:0 [| alt1; alt2 |] in
  let root =
    Node.make_root [| Node.make_bos (); c; Node.make_eos ~trailing:"" |]
  in
  (* A tiny grammar supplying names for the dot labels. *)
  let g =
    let b = Grammar.Builder.create () in
    let s = Grammar.Builder.nonterminal b "S" in
    let t = Grammar.Builder.terminal b "x" in
    Grammar.Builder.prod b s [ t ];
    Grammar.Builder.prod b s [ t ];
    Grammar.Builder.set_start b s;
    Grammar.Builder.build b
  in
  let dot = Parsedag.Pp.to_dot g root in
  let has sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph header" true (has "digraph parsedag");
  Alcotest.(check bool) "choice is a diamond" true (has "shape=diamond");
  Alcotest.(check bool) "terminal box" true (has "shape=box");
  (* The shared terminal appears once but has two incoming edges.  Ids
     are per-call (not global nids): recover the terminal's id from its
     declaration line, then count edges into it. *)
  ignore a;
  let find sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = if i + m > n then -1
      else if String.sub dot i m = sub then i else go (i + 1) in
    go 0
  in
  let decl = find (Printf.sprintf "[label=%S shape=box" "x") in
  Alcotest.(check bool) "terminal declared" true (decl >= 0);
  let id_start = String.rindex_from dot decl 'n' + 1 in
  let id_end = String.index_from dot id_start ' ' in
  let a_id = String.sub dot id_start (id_end - id_start) in
  let count_edges_to_a =
    let needle = Printf.sprintf "-> n%s;" a_id in
    let n = String.length dot and m = String.length needle in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub dot i m = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "shared terminal has two parents" 2 count_edges_to_a

let test_adjust_token_count () =
  let root, p, _, _ = small_tree () in
  Node.adjust_token_count p 2;
  Alcotest.(check int) "node adjusted" 4 (Node.token_count p);
  Alcotest.(check int) "ancestors adjusted" 4 (Node.token_count root)

let suite =
  [
    Alcotest.test_case "token counts" `Quick test_token_counts;
    Alcotest.test_case "text yield" `Quick test_yield;
    Alcotest.test_case "mark and commit" `Quick test_mark_and_commit;
    Alcotest.test_case "choice invariants" `Quick test_choice_invariants;
    Alcotest.test_case "cursor walk" `Quick test_cursor_walk;
    Alcotest.test_case "cursor skips alternatives" `Quick test_cursor_choice;
    Alcotest.test_case "cursor over epsilon" `Quick test_cursor_epsilon;
    Alcotest.test_case "stats overhead" `Quick test_stats_choice_overhead;
    Alcotest.test_case "epsilon unsharing" `Quick test_unshare;
    Alcotest.test_case "structural equality" `Quick test_structural_equal;
    Alcotest.test_case "graphviz output" `Quick test_to_dot;
    Alcotest.test_case "adjust token count" `Quick test_adjust_token_count;
  ]
