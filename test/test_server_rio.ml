(* Restartable-I/O regression tests for the daemon's read loops.

   The daemon installs signal handlers (SIGUSR1 dump, SIGTERM drain),
   so every blocking read can fail with EINTR at any moment; stdlib
   channels turn that into a fatal [Sys_error] mid-conversation.  The
   storm test fires SIGUSR1 at the process continuously while a
   scripted conversation streams through a pipe: with [Rio] every line
   must arrive and every request must answer, signals notwithstanding.

   The resync tests pin the bounded reader: an oversized line (9 MiB
   against a 1 MiB cap) is reported with its exact byte count WITHOUT
   being materialised, and the very next request on the stream parses
   normally. *)

module Json = Metrics.Json
module Engine = Server.Engine
module Rio = Server.Rio

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

(* Oversized-line resync at the reader level: [`Oversized] carries the
   exact byte count, the accumulator never holds the line, and the
   stream continues at the next newline. *)
let oversized_resync () =
  with_pipe @@ fun r w ->
  let big = 9 * 1024 * 1024 in
  let writer =
    Domain.spawn (fun () ->
        let chunk = Bytes.make 65536 'x' in
        let remaining = ref big in
        while !remaining > 0 do
          let n = min !remaining (Bytes.length chunk) in
          ignore (Unix.write w chunk 0 n);
          remaining := !remaining - n
        done;
        Rio.write_all w "\n";
        Rio.write_all w "{\"id\":1,\"method\":\"stats\"}\n";
        Unix.close w)
  in
  let reader = Rio.reader ~max_line:(1024 * 1024) r in
  (match Rio.read_line reader with
  | `Oversized n -> Alcotest.(check int) "exact byte count" big n
  | _ -> Alcotest.fail "expected `Oversized");
  (match Rio.read_line reader with
  | `Line l ->
      Alcotest.(check string)
        "next line survives resync" "{\"id\":1,\"method\":\"stats\"}" l
  | _ -> Alcotest.fail "expected `Line after resync");
  (match Rio.read_line reader with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected `Eof");
  Domain.join writer

(* A line of exactly max_line bytes is kept, one byte more is not. *)
let boundary () =
  with_pipe @@ fun r w ->
  let writer =
    Domain.spawn (fun () ->
        Rio.write_all w (String.make 8 'a' ^ "\n");
        Rio.write_all w (String.make 9 'b' ^ "\n");
        Rio.write_all w "tail";
        Unix.close w)
  in
  let reader = Rio.reader ~chunk:3 ~max_line:8 r in
  (match Rio.read_line reader with
  | `Line l -> Alcotest.(check string) "at the cap" (String.make 8 'a') l
  | _ -> Alcotest.fail "expected `Line at cap");
  (match Rio.read_line reader with
  | `Oversized n -> Alcotest.(check int) "one past the cap" 9 n
  | _ -> Alcotest.fail "expected `Oversized past cap");
  (* An unterminated final line is delivered before Eof, like
     input_line. *)
  (match Rio.read_line reader with
  | `Line l -> Alcotest.(check string) "unterminated tail" "tail" l
  | _ -> Alcotest.fail "expected trailing `Line");
  (match Rio.read_line reader with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected `Eof");
  Domain.join writer

(* SIGUSR1 storm during a scripted conversation: the read loop must
   deliver every line and the engine must answer every request while
   signals land continuously.  (Under the pre-Rio channel loop a signal
   in a blocking read kills the conversation with Sys_error.) *)
let eintr_storm () =
  let hits = ref 0 in
  let prev =
    Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> incr hits))
  in
  Fun.protect ~finally:(fun () -> ignore (Sys.signal Sys.sigusr1 prev))
  @@ fun () ->
  with_pipe @@ fun r w ->
  let stop_storm = Atomic.make false in
  let storm =
    Domain.spawn (fun () ->
        let self = Unix.getpid () in
        while not (Atomic.get stop_storm) do
          (try Unix.kill self Sys.sigusr1 with Unix.Unix_error _ -> ());
          try Unix.sleepf 0.0005 with Unix.Unix_error _ -> ()
        done)
  in
  let lines =
    [
      {|{"id":1,"method":"open","params":{"doc":"a","lang":"calc","text":"x = 1;\n"}}|};
    ]
    @ List.concat
        (List.init 20 (fun i ->
             [
               Printf.sprintf
                 {|{"id":%d,"method":"edit","params":{"doc":"a","edits":[{"pos":4,"del":1,"insert":"%d"}]}}|}
                 (2 * i + 2) (i mod 10);
               Printf.sprintf
                 {|{"id":%d,"method":"parse","params":{"doc":"a"}}|}
                 (2 * i + 3);
             ]))
  in
  let writer =
    Domain.spawn (fun () ->
        List.iter
          (fun l ->
            Rio.write_all w (l ^ "\n");
            try Unix.sleepf 0.002 with Unix.Unix_error _ -> ())
          lines;
        Unix.close w)
  in
  let responses = ref [] in
  let engine =
    Engine.create ~jobs:0 ~emit:(fun l -> responses := l :: !responses) ()
  in
  let reader = Rio.reader ~max_line:(1024 * 1024) r in
  let received = ref 0 in
  let rec loop () =
    match Rio.read_line reader with
    | `Line l ->
        incr received;
        Engine.handle_line engine l;
        loop ()
    | `Oversized _ | `Stopped -> loop ()
    | `Eof -> ()
  in
  loop ();
  Atomic.set stop_storm true;
  Domain.join storm;
  Domain.join writer;
  Engine.shutdown engine;
  Alcotest.(check int) "every line arrived" (List.length lines) !received;
  Alcotest.(check int)
    "every request answered" (List.length lines)
    (List.length !responses);
  List.iter
    (fun r ->
      match Json.member "error" (Json.of_string r) with
      | None -> ()
      | Some e -> Alcotest.failf "request failed under storm: %s" (Json.to_line e))
    !responses

(* write_all completes large writes across pipe-buffer partial writes
   (a domain drains the other end slowly). *)
let write_all_partial () =
  with_pipe @@ fun r w ->
  let payload = String.init (3 * 1024 * 1024) (fun i -> Char.chr (i mod 26 + 65)) in
  let drained = Buffer.create (String.length payload) in
  let reader =
    Domain.spawn (fun () ->
        let buf = Bytes.create 8192 in
        let rec go () =
          match Unix.read r buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes drained buf 0 n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ())
  in
  Rio.write_all w payload;
  Unix.close w;
  Domain.join reader;
  Alcotest.(check int)
    "all bytes delivered" (String.length payload)
    (Buffer.length drained);
  Alcotest.(check bool)
    "delivered intact" true
    (String.equal payload (Buffer.contents drained))

let suite =
  [
    Alcotest.test_case "oversized line: exact count, stream resyncs" `Quick
      oversized_resync;
    Alcotest.test_case "max_line boundary and unterminated tail" `Quick
      boundary;
    Alcotest.test_case "SIGUSR1 storm never drops a line or a response"
      `Quick eintr_storm;
    Alcotest.test_case "write_all survives partial pipe writes" `Quick
      write_all_partial;
  ]
