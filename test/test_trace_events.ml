(* Invariants of the structured trace stream (lib/trace) and a golden
   check of the dag visualization.

   - Every capture must satisfy [Trace.Check.well_formed]: timestamps
     monotone non-decreasing, begin/end spans balanced under strict
     stack discipline.
   - During a reparse, the [session.reparse] root span must enclose all
     engine events (glr/gss/reuse/commit), and the [session.edit] span
     must enclose the relex events — the Perfetto view is only readable
     if nesting reflects the actual call structure.
   - [Pp.to_dot] on the Appendix B typedef-ambiguity example must match
     a golden graph: per-call sequential node ids make the output a pure
     function of dag shape, so this is stable across runs. *)

module Session = Iglr.Session
module Language = Languages.Language

let capture f =
  Trace.set_enabled true;
  Trace.clear ();
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let make_session lang text =
  let s, outcome =
    Session.create ~table:(Language.table lang) ~lexer:(Language.lexer lang)
      text
  in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "fixture rejected");
  s

let assert_well_formed ctx =
  Alcotest.(check int) (ctx ^ ": no ring overflow") 0 (Trace.dropped ());
  match Trace.Check.well_formed (Trace.events ()) with
  | [] -> ()
  | faults ->
      Alcotest.failf "%s: malformed trace:\n %s" ctx
        (String.concat "\n " faults)

(* Full lifecycle — initial parse, an edit, a reparse — produces a
   balanced, monotone stream. *)
let test_stream_well_formed () =
  capture @@ fun () ->
  let lang = Languages.C_subset.language in
  let s = make_session lang "int f () { int x; x = 1; }" in
  assert_well_formed "initial parse";
  Session.edit s ~pos:22 ~del:1 ~insert:"2";
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "edit broke the parse");
  assert_well_formed "edit + reparse"

(* Ambiguous input exercises fork/merge/pack emission; the stream must
   still be balanced. *)
let test_ambiguous_stream_well_formed () =
  capture @@ fun () ->
  let lang = Languages.Cpp_subset.language in
  let _ = make_session lang "int f () { a (b); }" in
  assert_well_formed "ambiguous parse"

let span_bounds name evs =
  let seq_of phase =
    List.find_map
      (fun (e : Trace.event) ->
        if e.Trace.cat = Trace.Session && e.Trace.name = name
           && e.Trace.phase = phase
        then Some e.Trace.seq
        else None)
      evs
  in
  match (seq_of Trace.Begin, seq_of Trace.End) with
  | Some b, Some e -> (b, e)
  | _ -> Alcotest.failf "session span %S missing begin or end" name

let test_root_span_encloses () =
  let lang = Languages.C_subset.language in
  let s =
    capture (fun () -> make_session lang "int f () { int x; x = 1; }")
  in
  let evs =
    capture @@ fun () ->
    Session.edit s ~pos:22 ~del:1 ~insert:"2";
    (match Session.reparse s with
    | Session.Parsed _ -> ()
    | Session.Recovered _ -> Alcotest.fail "edit broke the parse");
    Trace.events ()
  in
  let edit_b, edit_e = span_bounds "edit" evs
  and rep_b, rep_e = span_bounds "reparse" evs in
  Alcotest.(check bool) "edit span precedes reparse span" true
    (edit_e < rep_b);
  List.iter
    (fun (e : Trace.event) ->
      let inside lo hi what =
        if not (lo < e.Trace.seq && e.Trace.seq < hi) then
          Alcotest.failf "%a escapes the session %s span" Trace.pp_event e
            what
      in
      match e.Trace.cat with
      | Trace.Glr | Trace.Gss | Trace.Reuse | Trace.Commit ->
          inside rep_b rep_e "reparse"
      | Trace.Relex -> inside edit_b edit_e "edit"
      | Trace.Lex | Trace.Filter | Trace.Session | Trace.Query -> ())
    evs;
  Alcotest.(check bool) "engine events present" true
    (List.exists (fun (e : Trace.event) -> e.Trace.cat = Trace.Glr) evs)

(* Appendix B: "a (b);" inside a function body is both an expression
   statement and a declaration of b; the dag keeps both readings under a
   choice node (gold diamond, dotted edges) and shares the terminals of
   the ambiguous region between them. *)
let golden_appendix_b_dot =
  {golden|digraph parsedag {
  node [fontname="monospace"];
  n0 [label="root" shape=plaintext];
  n0 -> n1;
  n1 [label="bos" shape=point];
  n0 -> n2;
  n2 [label="translation_unit" shape=ellipse];
  n2 -> n3;
  n3 [label="ext_decl*" shape=ellipse];
  n3 -> n4;
  n4 [label="ext_decl*" shape=ellipse];
  n3 -> n5;
  n5 [label="ext_decl" shape=ellipse];
  n5 -> n6;
  n6 [label="func_def" shape=ellipse];
  n6 -> n7;
  n7 [label="type_spec" shape=ellipse];
  n7 -> n8;
  n8 [label="int" shape=box style=filled fillcolor=lightgrey];
  n6 -> n9;
  n9 [label="f" shape=box style=filled fillcolor=lightgrey];
  n6 -> n10;
  n10 [label="(" shape=box style=filled fillcolor=lightgrey];
  n6 -> n11;
  n11 [label=")" shape=box style=filled fillcolor=lightgrey];
  n6 -> n12;
  n12 [label="compound" shape=ellipse];
  n12 -> n13;
  n13 [label="{" shape=box style=filled fillcolor=lightgrey];
  n12 -> n14;
  n14 [label="stmt*" shape=ellipse];
  n14 -> n15;
  n15 [label="stmt*" shape=ellipse];
  n14 -> n16;
  n16 [label="stmt?" shape=diamond style=filled fillcolor=gold];
  n16 -> n17 [style=dotted];
  n17 [label="stmt" shape=ellipse];
  n17 -> n18;
  n18 [label="expr" shape=ellipse];
  n18 -> n19;
  n19 [label="expr" shape=ellipse];
  n19 -> n20;
  n20 [label="a" shape=box style=filled fillcolor=lightgrey];
  n18 -> n21;
  n21 [label="(" shape=box style=filled fillcolor=lightgrey];
  n18 -> n22;
  n22 [label="arg_list" shape=ellipse];
  n22 -> n23;
  n23 [label="expr" shape=ellipse];
  n23 -> n24;
  n24 [label="b" shape=box style=filled fillcolor=lightgrey];
  n18 -> n25;
  n25 [label=")" shape=box style=filled fillcolor=lightgrey];
  n17 -> n26;
  n26 [label=";" shape=box style=filled fillcolor=lightgrey];
  n16 -> n27 [style=dotted];
  n27 [label="stmt" shape=ellipse];
  n27 -> n28;
  n28 [label="decl" shape=ellipse];
  n28 -> n29;
  n29 [label="type_spec" shape=ellipse];
  n29 -> n20;
  n28 -> n30;
  n30 [label="init_decl_list" shape=ellipse];
  n30 -> n31;
  n31 [label="init_decl" shape=ellipse];
  n31 -> n32;
  n32 [label="declarator" shape=ellipse];
  n32 -> n21;
  n32 -> n33;
  n33 [label="declarator" shape=ellipse];
  n33 -> n24;
  n32 -> n25;
  n28 -> n26;
  n12 -> n34;
  n34 [label="}" shape=box style=filled fillcolor=lightgrey];
  n0 -> n35;
  n35 [label="eos" shape=point];
}
|golden}

let test_golden_dot () =
  let lang = Languages.Cpp_subset.language in
  let s = make_session lang "int f () { a (b); }" in
  let dot =
    Parsedag.Pp.to_dot lang.Language.grammar (Session.root s)
  in
  Alcotest.(check string) "appendix B dot" golden_appendix_b_dot dot

let suite =
  [
    Alcotest.test_case "stream well-formed across edit" `Quick
      test_stream_well_formed;
    Alcotest.test_case "ambiguous stream well-formed" `Quick
      test_ambiguous_stream_well_formed;
    Alcotest.test_case "session spans enclose engine events" `Quick
      test_root_span_encloses;
    Alcotest.test_case "appendix B golden dot" `Quick test_golden_dot;
  ]
