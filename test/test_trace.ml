(* Golden-ish tests of the parser action trace (Appendix B): the fork on
   the typedef reduce/reduce conflict, tandem shifting by both parsers,
   and the merge into a symbol (choice) node.  The strings come from the
   structured sink via [Trace.to_legacy_string] — the same lines the
   retired [Glr.config.trace] callback used to produce. *)

module Session = Iglr.Session
module Language = Languages.Language

let capture_trace lang text =
  Trace.set_enabled true;
  Trace.clear ();
  let _, outcome =
    Fun.protect
      ~finally:(fun () -> Trace.set_enabled false)
      (fun () ->
        Session.create ~table:(Language.table lang)
          ~lexer:(Language.lexer lang) text)
  in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "trace parse failed");
  List.filter_map Trace.to_legacy_string (Trace.events ())

let contains sub line =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  go 0

let count pred lines = List.length (List.filter pred lines)

let test_lr2_trace () =
  let lines = capture_trace Languages.Lr2.language "x z c" in
  (* Both conflicting reductions fire on the same lookahead... *)
  Alcotest.(check int) "U -> x tried" 1
    (count (contains "reduce: U -> x") lines);
  Alcotest.(check int) "V -> x tried" 1
    (count (contains "reduce: V -> x") lines);
  (* ...then "z" is shifted by both parsers in tandem. *)
  Alcotest.(check int) "tandem shift of z" 1
    (count (fun l -> contains "z" l && contains "2 parser(s)" l) lines);
  (* The unambiguous result involves no symbol-node merge. *)
  Alcotest.(check int) "no ambiguity merge" 0
    (count (contains "amb:") lines)

let test_appendix_b_trace () =
  (* The C++ typedef example: the parser splits on the reduce/reduce
     conflict after "a", runs both interpretations through "(b);", and
     packs them under a stmt symbol node. *)
  let lines =
    capture_trace Languages.Cpp_subset.language "int f () { a (b); }"
  in
  (* Both namespaces are tried for the leading identifier. *)
  Alcotest.(check bool) "expression reading" true
    (count (contains "reduce: expr -> id") lines >= 1);
  Alcotest.(check bool) "type reading" true
    (count (contains "reduce: type_spec -> id") lines >= 1);
  (* Terminals of the ambiguous region are shifted by both parsers. *)
  Alcotest.(check bool) "tandem shifts" true
    (count (contains "2 parser(s)") lines >= 3);
  (* The interpretations merge into a symbol node for stmt. *)
  Alcotest.(check int) "one stmt symbol node" 1
    (count (contains "amb: symbol node for stmt (2 interpretations)") lines)

let test_deterministic_trace_has_no_forks () =
  let lines = capture_trace Languages.Calc.language "a = 1 + 2;" in
  Alcotest.(check int) "no merges" 0 (count (contains "amb:") lines);
  Alcotest.(check int) "single parser throughout" 0
    (count (contains "2 parser(s)") lines)

let suite =
  [
    Alcotest.test_case "figure 5/7 trace" `Quick test_lr2_trace;
    Alcotest.test_case "appendix B trace" `Quick test_appendix_b_trace;
    Alcotest.test_case "deterministic trace" `Quick
      test_deterministic_trace_has_no_forks;
  ]
