(* Deterministic property tests: every QCheck suite in this runner draws
   from one fixed seed, so a failure reproduces exactly; QCHECK_SEED=<n>
   in the environment overrides it (and a failing test prints the seed to
   re-run with). *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | None | Some "" -> 0x1697_5eed
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "QCHECK_SEED=%S is not an integer\n" s;
          exit 2)

let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  let run' args =
    try run args
    with e ->
      Printf.printf "reproduce with QCHECK_SEED=%d\n%!" seed;
      raise e
  in
  (name, speed, run')
