(* Differential fuzzing of the incremental session against batch reparse.

   Random edit scripts (Workload.Edit_gen.random_script — token tweaks,
   fragment inserts at statement boundaries, deletions, arbitrary small
   inserts) replay through an incremental Session; after EVERY edit the
   session must agree with a from-scratch GLR parse of the same text:

   - if the batch parse succeeds, the incremental parse must succeed and
     produce a structurally identical tree (sexp equality), and both dags
     must pass the Analyze.Check sanitizer;
   - if the batch parse rejects, the incremental parse must report
     Recovered — and the retained structure must still be a sane dag, so
     later edits can repair the program.

   The scripts deliberately include syntax-breaking edits: the pending
   damage then carries across parse failures, which is exactly where
   incremental bookkeeping (change bits, retained subtrees, recovery
   flags) historically rots. *)

module Session = Iglr.Session
module Glr = Iglr.Glr
module Node = Parsedag.Node
module Language = Languages.Language
module Edit_gen = Workload.Edit_gen

let base_calc =
  String.concat "\n"
    (List.init 12 (fun i -> Printf.sprintf "v%d = (1%d + 2) * x%d / 3;" i i i))

let base_c = Workload.Spec_gen.plain ~lines:30 ~seed:7

(* From-scratch oracle: Some sexp when the text parses, None when it is
   rejected.  Every accepted batch parse also runs the dag sanitizer. *)
let batch lang text =
  let table = Language.table lang in
  let tokens, trailing = Lexgen.Scanner.all (Language.lexer lang) text in
  match Glr.parse_tokens table tokens ~trailing with
  | root, _ ->
      Analyze.Check.assert_dag table root;
      Some (Parsedag.Pp.to_sexp lang.Language.grammar root)
  | exception Glr.Parse_error _ -> None

let replay lang base (seed, count) =
  let table = Language.table lang in
  let script = Edit_gen.random_script ~seed ~count base in
  (* Every fuzzed edit also runs with the trace sink live: whatever the
     edit does to the parser — including recovery — the event stream must
     stay well-formed (balanced spans, monotone timestamps). *)
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) @@ fun () ->
  let s, outcome0 =
    Session.create ~table ~lexer:(Language.lexer lang) base
  in
  (match outcome0 with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> QCheck.Test.fail_report "base program rejected");
  let text = ref base in
  List.for_all
    (fun (e : Edit_gen.edit) ->
      text := Edit_gen.apply e !text;
      Trace.clear ();
      Session.edit s ~pos:e.Edit_gen.e_pos ~del:e.Edit_gen.e_del
        ~insert:e.Edit_gen.e_insert;
      if not (String.equal (Session.text s) !text) then
        QCheck.Test.fail_report "document text diverged from edit replay";
      let outcome = Session.reparse s in
      (if Trace.dropped () = 0 then
         match Trace.Check.well_formed (Trace.events ()) with
         | [] -> ()
         | faults ->
             QCheck.Test.fail_reportf "malformed trace after edit:\n %s"
               (String.concat "\n " faults));
      match (batch lang !text, outcome) with
      | Some expected, Session.Parsed _ ->
          Analyze.Check.assert_dag table (Session.root s);
          if Session.has_errors s then
            QCheck.Test.fail_report "has_errors set after a clean parse";
          let got = Parsedag.Pp.to_sexp lang.Language.grammar (Session.root s) in
          if not (String.equal got expected) then
            QCheck.Test.fail_reportf
              "incremental tree diverged from batch parse\n text: %S"
              !text;
          true
      | Some _, Session.Recovered _ ->
          QCheck.Test.fail_reportf
            "incremental parse recovered on batch-parseable text %S" !text
      | None, Session.Recovered { isolated; _ } ->
          (* Rejected on both sides.  When the damage was isolated, the
             session committed a tree with explicit error nodes: the full
             sanitizer (error-subtree rules included) applies, text yield
             and all.  The flag-only fallback retains a deliberately
             damaged tree (change bits pending, unincorporated terminals
             flagged), so there the commit-time sanitizer does not apply;
             the next clean parse after a repairing edit re-checks the
             full invariants. *)
          if isolated > 0 then
            Analyze.Check.assert_dag ~expect_text:!text table
              (Session.root s);
          if not (Session.has_errors s) then
            QCheck.Test.fail_report "has_errors unset after recovery";
          true
      | None, Session.Parsed _ ->
          QCheck.Test.fail_reportf
            "incremental parse accepted batch-rejected text %S" !text)
    script

(* Fault injection: interleave syntactically invalid token runs with
   ordinary random edits, under a GSS-width budget.  After every edit the
   session must terminate with an outcome (never an uncaught exception),
   committed trees (clean or isolated) must be sanitizer-clean, and a
   final full-text rewrite must converge to the batch parse. *)
let garbage = [| " ) ("; " ; ;"; " * /"; " = ="; " ( ;"; " ) ) )"; " + *" |]

let fault_replay lang base (seed, count) =
  let table = Language.table lang in
  let budget = { Glr.no_budget with Glr.max_parsers = 8 } in
  let rng = Random.State.make [| seed; 0xfa; 0x17 |] in
  let s, outcome0 =
    Session.create ~budget ~table ~lexer:(Language.lexer lang) base
  in
  (match outcome0 with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> QCheck.Test.fail_report "base program rejected");
  let text = ref base in
  let step () =
    (* Half the edits inject an invalid token run at a random position;
       the rest are random deletions of short spans. *)
    let len = String.length !text in
    let pos, del, insert =
      if Random.State.bool rng then
        ( Random.State.int rng (len + 1),
          0,
          garbage.(Random.State.int rng (Array.length garbage)) )
      else
        let pos = Random.State.int rng (max 1 len) in
        (pos, min (1 + Random.State.int rng 3) (len - pos), "")
    in
    match Session.edit s ~pos ~del ~insert with
    | () ->
        text :=
          String.concat ""
            [
              String.sub !text 0 pos;
              insert;
              String.sub !text (pos + del) (len - pos - del);
            ]
    | exception Lexgen.Scanner.Lex_error _ ->
        (* Unscannable result: the edit was rejected and the document is
           unchanged — skip. *)
        ()
  in
  for _ = 1 to count do
    step ();
    match (batch lang !text, Session.reparse s) with
    | Some expected, Session.Parsed _ ->
        Analyze.Check.assert_dag ~expect_text:!text table (Session.root s);
        let got = Parsedag.Pp.to_sexp lang.Language.grammar (Session.root s) in
        if not (String.equal got expected) then
          QCheck.Test.fail_reportf "diverged from batch on %S" !text
    | Some _, Session.Recovered { degraded; _ } ->
        (* Only a budget hit may recover batch-parseable text. *)
        if not degraded then
          QCheck.Test.fail_reportf "recovered on batch-parseable text %S"
            !text
    | None, Session.Recovered { isolated; _ } ->
        if isolated > 0 then
          Analyze.Check.assert_dag ~expect_text:!text table (Session.root s)
    | None, Session.Parsed _ ->
        QCheck.Test.fail_reportf "accepted batch-rejected text %S" !text
  done;
  (* Convergence: rewrite the whole document back to the pristine base;
     unless the final reparse itself was pruned by the budget, it must be
     a clean parse, batch-identical, with no residual error regions. *)
  let before = Session.metrics s in
  Session.edit s ~pos:0 ~del:(String.length !text) ~insert:base;
  let outcome = Session.reparse s in
  let pruned =
    Metrics.count (Metrics.diff (Session.metrics s) before)
      "glr.pruned_parsers"
  in
  (match outcome with
  | Session.Parsed _ ->
      Analyze.Check.assert_dag ~expect_text:base table (Session.root s);
      if Session.error_regions s <> [] then
        QCheck.Test.fail_report "residual error regions after convergence";
      let got = Parsedag.Pp.to_sexp lang.Language.grammar (Session.root s) in
      (match batch lang base with
      | Some expected when not (String.equal got expected) ->
          QCheck.Test.fail_report "converged tree differs from batch parse"
      | _ -> ())
  | Session.Recovered _ when pruned > 0 -> ()
  | Session.Recovered _ ->
      QCheck.Test.fail_report "failed to converge after full rewrite");
  true

(* Compiled-table differential mode: the same random edit scripts replay
   through a session running on the filter-compiled table with only the
   residual rules left dynamic; after every edit the committed tree must
   be sexp-identical to a from-scratch parse on the conflict-retaining
   table with the full declared filter set applied.  This is the
   filter-compilation observational-equivalence invariant exercised
   under incremental editing (reuse, damage tracking, recovery), which
   the static certificate's batch corpus cannot reach. *)
let batch_dynamic lang text =
  let table = Language.table lang in
  let tokens, trailing = Lexgen.Scanner.all (Language.lexer lang) text in
  match Glr.parse_tokens table tokens ~trailing with
  | root, _ ->
      Analyze.Check.assert_dag table root;
      let filters = lang.Language.ambig.Language.syn_filters in
      if filters <> [] then
        ignore (Iglr.Syn_filter.apply lang.Language.grammar filters root);
      Some (Parsedag.Pp.to_sexp lang.Language.grammar root)
  | exception Glr.Parse_error _ -> None

let compiled_replay lang base (seed, count) =
  let table = Language.compiled_table lang in
  let script = Edit_gen.random_script ~seed ~count base in
  let s, outcome0 =
    Session.create ~table
      ~syn_filters:(Language.residual_filters lang)
      ~lexer:(Language.lexer lang) base
  in
  (match outcome0 with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> QCheck.Test.fail_report "base program rejected");
  let text = ref base in
  List.for_all
    (fun (e : Edit_gen.edit) ->
      text := Edit_gen.apply e !text;
      Session.edit s ~pos:e.Edit_gen.e_pos ~del:e.Edit_gen.e_del
        ~insert:e.Edit_gen.e_insert;
      match (batch_dynamic lang !text, Session.reparse s) with
      | Some expected, Session.Parsed _ ->
          Analyze.Check.assert_dag table (Session.root s);
          let got =
            Parsedag.Pp.to_sexp lang.Language.grammar (Session.root s)
          in
          if not (String.equal got expected) then
            QCheck.Test.fail_reportf
              "compiled-table tree diverged from dynamic pipeline\n text: %S"
              !text;
          true
      | Some _, Session.Recovered _ ->
          QCheck.Test.fail_reportf
            "compiled table recovered on dynamically-parseable text %S" !text
      | None, Session.Recovered _ -> true
      | None, Session.Parsed _ ->
          QCheck.Test.fail_reportf
            "compiled table accepted dynamically-rejected text %S" !text)
    script

(* Daemon-differential mode: the same random edit scripts replay through
   the full iglrd RPC codec — every edit is serialized to a request line
   (JSON string escaping and all), decoded by the engine, and applied to
   the pooled session — and after every edit the daemon-side document
   must agree byte-for-byte with a directly-edited Session, with the
   final dags sexp-identical.  This pins the wire codec as a faithful
   transport: whatever bytes Edit_gen produces (newlines, quotes,
   comment openers), encode → decode → apply = apply. *)
let daemon_replay lang base (seed, count) =
  let module Json = Metrics.Json in
  let lang_name = Languages.Registry.name_of lang in
  let script = Edit_gen.random_script ~seed ~count base in
  let responses = ref [] in
  let engine =
    Server.Engine.create ~jobs:0 ~emit:(fun l -> responses := l :: !responses) ()
  in
  Fun.protect ~finally:(fun () -> Server.Engine.shutdown engine) @@ fun () ->
  let rpc fields =
    let before = List.length !responses in
    Server.Engine.handle_line engine (Json.to_line (Json.Obj fields));
    match !responses with
    | r :: _ when List.length !responses = before + 1 -> (
        let j = Json.of_string r in
        match Json.member "error" j with
        | Some e ->
            QCheck.Test.fail_reportf "daemon rejected a fuzz request: %s"
              (Json.to_line e)
        | None -> j)
    | _ -> QCheck.Test.fail_report "daemon dropped a response"
  in
  ignore
    (rpc
       [
         ("id", Json.Int 0);
         ("method", Json.String "open");
         ( "params",
           Json.Obj
             [
               ("doc", Json.String "fuzz");
               ("lang", Json.String lang_name);
               ("text", Json.String base);
             ] );
       ]);
  let direct, _ =
    Session.create ~table:(Language.table lang) ~lexer:(Language.lexer lang)
      base
  in
  let daemon_session () =
    match Server.Pool.find (Server.Engine.pool engine) "fuzz" with
    | Some e -> e.Server.Pool.session
    | None -> QCheck.Test.fail_report "fuzz doc missing from the pool"
  in
  List.iteri
    (fun i (e : Edit_gen.edit) ->
      ignore
        (rpc
           [
             ("id", Json.Int (i + 1));
             ("method", Json.String "edit");
             ( "params",
               Json.Obj
                 [
                   ("doc", Json.String "fuzz");
                   ( "edits",
                     Json.List
                       [
                         Json.Obj
                           [
                             ("pos", Json.Int e.Edit_gen.e_pos);
                             ("del", Json.Int e.Edit_gen.e_del);
                             ("insert", Json.String e.Edit_gen.e_insert);
                           ];
                       ] );
                 ] );
           ]);
      Session.edit direct ~pos:e.Edit_gen.e_pos ~del:e.Edit_gen.e_del
        ~insert:e.Edit_gen.e_insert;
      if not (String.equal (Session.text (daemon_session ())) (Session.text direct))
      then
        QCheck.Test.fail_reportf
          "RPC-transported edit %d diverged from direct application" i;
      ignore
        (rpc
           [
             ("id", Json.Int (-(i + 1)));
             ("method", Json.String "parse");
             ("params", Json.Obj [ ("doc", Json.String "fuzz") ]);
           ]);
      ignore (Session.reparse direct))
    script;
  let got =
    Parsedag.Pp.to_sexp lang.Language.grammar
      (Session.root (daemon_session ()))
  in
  let expected =
    Parsedag.Pp.to_sexp lang.Language.grammar (Session.root direct)
  in
  if not (String.equal got expected) then
    QCheck.Test.fail_report "daemon-side dag diverged from direct session";
  true

(* Semantic-query differential mode: the same random edit scripts replay
   through a Session with the Diag query layer subscribed to commits;
   after every edit that commits a tree (clean parse or isolated
   recovery — the flag-only fallback deliberately retains a damaged,
   uncommitted tree), the incrementally-maintained analysis — bindings,
   diagnostics, inferred types, and (for C) the typedef report — must
   render identically to a from-scratch recompute by fresh analyzers on
   the same dag.  This is the query engine's correctness contract:
   validation, early cutoff and push-invalidation may skip work, never
   change answers. *)
module Diag = Semantics.Diag
module Typedefs = Semantics.Typedefs

let with_typedefs lang =
  (* The C subsets need semantic disambiguation before name analysis;
     calc has no choice nodes and no typedef namespace. *)
  Languages.Registry.name_of lang <> "calc"

let make_analyzers lang =
  let d = Diag.create lang.Language.grammar in
  let tds =
    if with_typedefs lang then begin
      let tds =
        Typedefs.create ~policy:Typedefs.Namespace_only lang.Language.grammar
      in
      Typedefs.on_select tds (Diag.touch d);
      Some tds
    end
    else None
  in
  (d, tds)

let run_analysis (d, tds) root =
  match tds with
  | None -> (Diag.run d root, [])
  | Some tds ->
      let tr = Typedefs.analyze tds root in
      ( Diag.run d ~typedefs:(Typedefs.global_typedefs tds) root,
        [
          ("typedefs", tr.Typedefs.typedefs);
          ("choices", tr.Typedefs.choices);
          ("unresolved", tr.Typedefs.unresolved);
          ("errors", List.length tr.Typedefs.errors);
        ] )

let query_replay lang base (seed, count) =
  let table = Language.table lang in
  let script = Edit_gen.random_script ~seed ~count base in
  let s, outcome0 =
    Session.create ~table ~lexer:(Language.lexer lang) base
  in
  (match outcome0 with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> QCheck.Test.fail_report "base program rejected");
  let inc = make_analyzers lang in
  let d, _ = inc in
  Session.on_commit s (fun ~watermark root -> Diag.commit d ~watermark root);
  ignore (run_analysis inc (Session.root s));
  let text = ref base in
  List.for_all
    (fun (e : Edit_gen.edit) ->
      text := Edit_gen.apply e !text;
      Session.edit s ~pos:e.Edit_gen.e_pos ~del:e.Edit_gen.e_del
        ~insert:e.Edit_gen.e_insert;
      let committed =
        match Session.reparse s with
        | Session.Parsed _ -> true
        | Session.Recovered { isolated; _ } -> isolated > 0
      in
      if committed then begin
        let r, tsum = run_analysis inc (Session.root s) in
        let scratch = make_analyzers lang in
        let r0, tsum0 = run_analysis scratch (Session.root s) in
        if not (String.equal (Diag.render r) (Diag.render r0)) then
          QCheck.Test.fail_reportf
            "incremental analysis diverged from scratch recompute\n\
            \ text: %S\n incremental:\n%s\n scratch:\n%s" !text
            (Diag.render r) (Diag.render r0);
        if tsum <> tsum0 then
          QCheck.Test.fail_reportf
            "incremental typedef report diverged from scratch on %S" !text
      end;
      true)
    script

(* The §5 protocol on the query layer: syntactically-neutral single-token
   edits must leave most semantic cells validating clean — the analysis
   recomputes strictly fewer cells than it holds (early cutoff +
   keyed-by-retained-nid reuse), while still agreeing with scratch. *)
let query_reuse_replay lang base (seed, count) =
  let table = Language.table lang in
  let s, outcome0 =
    Session.create ~table ~lexer:(Language.lexer lang) base
  in
  (match outcome0 with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> QCheck.Test.fail_report "base program rejected");
  let inc = make_analyzers lang in
  let d, _ = inc in
  Session.on_commit s (fun ~watermark root -> Diag.commit d ~watermark root);
  ignore (run_analysis inc (Session.root s));
  let edits = Edit_gen.token_edits ~seed ~count (Session.text s) in
  List.for_all
    (fun (e : Edit_gen.edit) ->
      Session.edit s ~pos:e.Edit_gen.e_pos ~del:e.Edit_gen.e_del
        ~insert:e.Edit_gen.e_insert;
      (match Session.reparse s with
      | Session.Parsed _ -> ()
      | Session.Recovered _ ->
          QCheck.Test.fail_report "neutral token edit broke the parse");
      let c0 = (Query.stats (Diag.engine d)).Query.computes in
      let r, _ = run_analysis inc (Session.root s) in
      let recomputed = (Query.stats (Diag.engine d)).Query.computes - c0 in
      let total = Query.cells (Diag.engine d) in
      if recomputed >= total then
        QCheck.Test.fail_reportf
          "no semantic reuse on a single-token edit: recomputed %d of %d \
           cells"
          recomputed total;
      let scratch = make_analyzers lang in
      let r0, _ = run_analysis scratch (Session.root s) in
      if not (String.equal (Diag.render r) (Diag.render r0)) then
        QCheck.Test.fail_report
          "reuse run diverged from scratch recompute";
      true)
    edits

let arb_script =
  QCheck.(pair (int_bound 1_000_000) (int_range 1 8))

let prop_calc =
  QCheck.Test.make ~count:60 ~name:"edit fuzz: calc incremental = batch"
    arb_script
    (replay Languages.Calc.language base_calc)

let prop_c =
  QCheck.Test.make ~count:60 ~name:"edit fuzz: C incremental = batch"
    arb_script
    (replay Languages.C_subset.language base_c)

let prop_compiled_calc =
  QCheck.Test.make ~count:40
    ~name:"edit fuzz: calc compiled table = dynamic pipeline" arb_script
    (compiled_replay Languages.Calc.language base_calc)

let prop_compiled_c =
  QCheck.Test.make ~count:40
    ~name:"edit fuzz: C compiled table = dynamic pipeline" arb_script
    (compiled_replay Languages.C_subset.language base_c)

let prop_daemon_calc =
  QCheck.Test.make ~count:30
    ~name:"edit fuzz: calc via RPC codec = direct session" arb_script
    (daemon_replay Languages.Calc.language base_calc)

let prop_daemon_c =
  QCheck.Test.make ~count:30
    ~name:"edit fuzz: C via RPC codec = direct session" arb_script
    (daemon_replay Languages.C_subset.language base_c)

let prop_query_calc =
  QCheck.Test.make ~count:40
    ~name:"edit fuzz: calc incremental queries = scratch" arb_script
    (query_replay Languages.Calc.language base_calc)

let prop_query_c =
  QCheck.Test.make ~count:40
    ~name:"edit fuzz: C incremental queries = scratch" arb_script
    (query_replay Languages.C_subset.language base_c)

let prop_query_reuse_calc =
  QCheck.Test.make ~count:25
    ~name:"edit fuzz: calc semantic reuse on token edits" arb_script
    (query_reuse_replay Languages.Calc.language base_calc)

let prop_query_reuse_c =
  QCheck.Test.make ~count:25
    ~name:"edit fuzz: C semantic reuse on token edits" arb_script
    (query_reuse_replay Languages.C_subset.language base_c)

let prop_fault_calc =
  QCheck.Test.make ~count:40
    ~name:"fault injection: calc isolation + budget + convergence"
    arb_script
    (fault_replay Languages.Calc.language base_calc)

let prop_fault_c =
  QCheck.Test.make ~count:40
    ~name:"fault injection: C isolation + budget + convergence"
    arb_script
    (fault_replay Languages.C_subset.language base_c)

(* The §5 reuse invariant, asserted via the metrics layer: one token edit
   deep inside a balanced program must rebuild only the spine — under 10%
   of the tree (in practice ~1%). *)
let reuse_invariant () =
  let lang = Languages.C_subset.language in
  let src = Workload.Spec_gen.nested ~depth:9 ~seed:3 in
  let s, outcome =
    Session.create ~table:(Language.table lang) ~lexer:(Language.lexer lang)
      src
  in
  (match outcome with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "nested fixture rejected");
  let total = Node.count_nodes (Session.root s) in
  let e =
    List.hd (Edit_gen.token_edits ~seed:41 ~count:1 (Session.text s))
  in
  let before = Session.metrics s in
  Session.edit s ~pos:e.Edit_gen.e_pos ~del:e.Edit_gen.e_del
    ~insert:e.Edit_gen.e_insert;
  (match Session.reparse s with
  | Session.Parsed _ -> ()
  | Session.Recovered _ -> Alcotest.fail "token edit broke the parse");
  let d = Metrics.diff (Session.metrics s) before in
  let created = Metrics.count d "glr.nodes_created" in
  let reused_pct =
    100. *. (1. -. (float_of_int created /. float_of_int total))
  in
  if reused_pct < 90. then
    Alcotest.failf
      "single-token edit rebuilt %d of %d nodes (%.1f%% reuse, need >= 90%%)"
      created total reused_pct

let suite =
  [
    Test_seed.to_alcotest prop_calc;
    Test_seed.to_alcotest prop_c;
    Test_seed.to_alcotest prop_compiled_calc;
    Test_seed.to_alcotest prop_compiled_c;
    Test_seed.to_alcotest prop_daemon_calc;
    Test_seed.to_alcotest prop_daemon_c;
    Test_seed.to_alcotest prop_query_calc;
    Test_seed.to_alcotest prop_query_c;
    Test_seed.to_alcotest prop_query_reuse_calc;
    Test_seed.to_alcotest prop_query_reuse_c;
    Test_seed.to_alcotest prop_fault_calc;
    Test_seed.to_alcotest prop_fault_c;
    Alcotest.test_case "reuse invariant: single-token edit >= 90%" `Quick
      reuse_invariant;
  ]
